package adl

import (
	"fmt"
	"sort"
	"strings"
	"testing"
	"time"

	"soleil/internal/fixture"
	"soleil/internal/model"
)

// fig4XML is the motivation example of Fig. 4 in the paper's dialect.
const fig4XML = `<?xml version="1.0"?>
<Architecture name="factory-monitoring">
  <ActiveComponent name="ProductionLine" type="periodic" periodicity="10ms">
    <interface name="iMonitor" role="client" signature="IMonitor"/>
    <content class="ProductionLineImpl"/>
  </ActiveComponent>
  <ActiveComponent name="MonitoringSystem" type="sporadic">
    <interface name="iMonitor" role="server" signature="IMonitor"/>
    <interface name="iConsole" role="client" signature="IConsole"/>
    <interface name="iLog" role="client" signature="ILog"/>
    <content class="MonitoringSystemImpl"/>
  </ActiveComponent>
  <ActiveComponent name="Audit" type="sporadic">
    <interface name="iLog" role="server" signature="ILog"/>
    <content class="AuditImpl"/>
  </ActiveComponent>
  <PassiveComponent name="Console">
    <interface name="iConsole" role="server" signature="IConsole"/>
    <content class="ConsoleImpl"/>
  </PassiveComponent>
  <Binding>
    <client cname="ProductionLine" iname="iMonitor"/>
    <server cname="MonitoringSystem" iname="iMonitor"/>
    <BindDesc protocol="asynchronous" bufferSize="10"/>
  </Binding>
  <Binding>
    <client cname="MonitoringSystem" iname="iConsole"/>
    <server cname="Console" iname="iConsole"/>
    <BindDesc protocol="synchronous"/>
  </Binding>
  <Binding>
    <client cname="MonitoringSystem" iname="iLog"/>
    <server cname="Audit" iname="iLog"/>
    <BindDesc protocol="asynchronous" bufferSize="16"/>
  </Binding>
  <MemoryArea name="Imm1">
    <ThreadDomain name="NHRT1">
      <ActiveComp name="ProductionLine"/>
      <DomainDesc type="NHRT" priority="30"/>
    </ThreadDomain>
    <ThreadDomain name="NHRT2">
      <ActiveComp name="MonitoringSystem"/>
      <DomainDesc type="NHRT" priority="25"/>
    </ThreadDomain>
    <AreaDesc type="immortal" size="600KB"/>
  </MemoryArea>
  <MemoryArea name="S1">
    <PassiveComp name="Console"/>
    <AreaDesc type="scope" name="cscope" size="28KB"/>
  </MemoryArea>
  <MemoryArea name="H1">
    <ThreadDomain name="reg1">
      <ActiveComp name="Audit"/>
      <DomainDesc type="Regular" priority="5"/>
    </ThreadDomain>
    <AreaDesc type="heap"/>
  </MemoryArea>
</Architecture>
`

func TestDecodeFig4(t *testing.T) {
	a, err := DecodeString(fig4XML)
	if err != nil {
		t.Fatal(err)
	}
	if a.Name() != "factory-monitoring" {
		t.Fatalf("name = %q", a.Name())
	}
	pl, ok := a.Component("ProductionLine")
	if !ok {
		t.Fatal("ProductionLine missing")
	}
	act := pl.Activation()
	if act.Kind != model.PeriodicActivation || act.Period != 10*time.Millisecond {
		t.Fatalf("activation = %+v", act)
	}
	if pl.Content() != "ProductionLineImpl" {
		t.Fatalf("content = %q", pl.Content())
	}
	td, err := a.EffectiveThreadDomain(pl)
	if err != nil {
		t.Fatal(err)
	}
	if td.Name() != "NHRT1" || td.Domain().Kind != model.NoHeapRealtimeThread || td.Domain().Priority != 30 {
		t.Fatalf("thread domain = %s %+v", td.Name(), td.Domain())
	}
	ma, err := a.EffectiveMemoryArea(pl)
	if err != nil {
		t.Fatal(err)
	}
	if ma.Name() != "Imm1" || ma.Area().Kind != model.ImmortalMemory || ma.Area().Size != 600<<10 {
		t.Fatalf("memory area = %s %+v", ma.Name(), ma.Area())
	}
	console, _ := a.Component("Console")
	cma, err := a.EffectiveMemoryArea(console)
	if err != nil {
		t.Fatal(err)
	}
	if cma.Area().Kind != model.ScopedMemory || cma.Area().ScopeName != "cscope" || cma.Area().Size != 28<<10 {
		t.Fatalf("console area = %+v", cma.Area())
	}
	if got := len(a.Bindings()); got != 3 {
		t.Fatalf("bindings = %d", got)
	}
	b := a.Bindings()[0]
	if b.Protocol != model.Asynchronous || b.BufferSize != 10 {
		t.Fatalf("binding 0 = %+v", b)
	}
}

// signature produces a canonical structural description of an
// architecture for equality checks.
func signature(a *model.Architecture) string {
	var lines []string
	for _, c := range a.Components() {
		line := fmt.Sprintf("comp %s kind=%s content=%q", c.Name(), c.Kind(), c.Content())
		if act := c.Activation(); act != nil {
			line += fmt.Sprintf(" act=%s/%v/%v/%v", act.Kind, act.Period, act.Deadline, act.Cost)
		}
		if d := c.Domain(); d != nil {
			line += fmt.Sprintf(" dom=%s/%d", d.Kind, d.Priority)
		}
		if ar := c.Area(); ar != nil {
			line += fmt.Sprintf(" area=%s/%s/%d", ar.Kind, ar.ScopeName, ar.Size)
		}
		for _, it := range c.Interfaces() {
			line += fmt.Sprintf(" itf=%s/%s/%s", it.Name, it.Role, it.Signature)
		}
		var parents []string
		for _, s := range c.Supers() {
			parents = append(parents, s.Name())
		}
		sort.Strings(parents)
		line += " parents=" + strings.Join(parents, ",")
		lines = append(lines, line)
	}
	for _, b := range a.Bindings() {
		lines = append(lines, fmt.Sprintf("bind %s->%s %s/%d/%s",
			b.Client, b.Server, b.Protocol, b.BufferSize, b.Pattern))
	}
	sort.Strings(lines)
	return strings.Join(lines, "\n")
}

func TestRoundTripFig4(t *testing.T) {
	a, err := DecodeString(fig4XML)
	if err != nil {
		t.Fatal(err)
	}
	out, err := EncodeString(a)
	if err != nil {
		t.Fatal(err)
	}
	b, err := DecodeString(out)
	if err != nil {
		t.Fatalf("re-decode: %v\n%s", err, out)
	}
	if signature(a) != signature(b) {
		t.Fatalf("round trip changed the architecture:\n--- first\n%s\n--- second\n%s",
			signature(a), signature(b))
	}
}

func TestRoundTripFixture(t *testing.T) {
	a, err := fixture.MotivationExample()
	if err != nil {
		t.Fatal(err)
	}
	out, err := EncodeString(a)
	if err != nil {
		t.Fatal(err)
	}
	b, err := DecodeString(out)
	if err != nil {
		t.Fatalf("re-decode: %v\n%s", err, out)
	}
	// The fixture's functional composite is rebuilt from refs.
	if signature(a) != signature(b) {
		t.Fatalf("round trip changed the architecture:\n--- first\n%s\n--- second\n%s",
			signature(a), signature(b))
	}
	// Second round trip is stable byte-for-byte.
	out2, err := EncodeString(b)
	if err != nil {
		t.Fatal(err)
	}
	if out != out2 {
		t.Fatal("encoding is not stable across a round trip")
	}
}

func TestDecodeNestedAreas(t *testing.T) {
	const doc = `<Architecture name="nested">
  <PassiveComponent name="p">
    <interface name="s" role="server" signature="I"/>
  </PassiveComponent>
  <MemoryArea name="outer">
    <MemoryArea name="inner">
      <PassiveComp name="p"/>
      <AreaDesc type="scope" size="1KB"/>
    </MemoryArea>
    <AreaDesc type="scope" size="4KB"/>
  </MemoryArea>
</Architecture>`
	a, err := DecodeString(doc)
	if err != nil {
		t.Fatal(err)
	}
	inner, ok := a.Component("inner")
	if !ok {
		t.Fatal("inner missing")
	}
	outer, _ := a.Component("outer")
	supers := inner.Supers()
	if len(supers) != 1 || supers[0] != outer {
		t.Fatal("nesting lost")
	}
	p, _ := a.Component("p")
	got, err := a.EffectiveMemoryArea(p)
	if err != nil || got != inner {
		t.Fatalf("p's area = %v, %v", got, err)
	}
	// Round trip keeps nesting.
	out, err := EncodeString(a)
	if err != nil {
		t.Fatal(err)
	}
	b, err := DecodeString(out)
	if err != nil {
		t.Fatal(err)
	}
	if signature(a) != signature(b) {
		t.Fatal("nested round trip changed the architecture")
	}
}

func TestDecodeErrors(t *testing.T) {
	cases := map[string]string{
		"not xml":            `garbage`,
		"unknown activation": `<Architecture><ActiveComponent name="a" type="weird"/></Architecture>`,
		"bad periodicity":    `<Architecture><ActiveComponent name="a" type="periodic" periodicity="10xs"/></Architecture>`,
		"missing period":     `<Architecture><ActiveComponent name="a" type="periodic"/></Architecture>`,
		"bad role":           `<Architecture><PassiveComponent name="p"><interface name="i" role="weird"/></PassiveComponent></Architecture>`,
		"binding no desc": `<Architecture>
			<ActiveComponent name="a" type="sporadic"><interface name="c" role="client" signature="I"/></ActiveComponent>
			<PassiveComponent name="p"><interface name="s" role="server" signature="I"/></PassiveComponent>
			<Binding><client cname="a" iname="c"/><server cname="p" iname="s"/></Binding></Architecture>`,
		"binding bad protocol": `<Architecture>
			<ActiveComponent name="a" type="sporadic"><interface name="c" role="client" signature="I"/></ActiveComponent>
			<PassiveComponent name="p"><interface name="s" role="server" signature="I"/></PassiveComponent>
			<Binding><client cname="a" iname="c"/><server cname="p" iname="s"/><BindDesc protocol="smoke"/></Binding></Architecture>`,
		"domain no desc":     `<Architecture><ThreadDomain name="td"/></Architecture>`,
		"domain bad type":    `<Architecture><ThreadDomain name="td"><DomainDesc type="zz"/></ThreadDomain></Architecture>`,
		"area no desc":       `<Architecture><MemoryArea name="m"/></Architecture>`,
		"area bad type":      `<Architecture><MemoryArea name="m"><AreaDesc type="zz"/></MemoryArea></Architecture>`,
		"area bad size":      `<Architecture><MemoryArea name="m"><AreaDesc type="scope" size="huge"/></MemoryArea></Architecture>`,
		"dangling ref":       `<Architecture><ThreadDomain name="td"><ActiveComp name="ghost"/><DomainDesc type="RT"/></ThreadDomain></Architecture>`,
		"dangling composite": `<Architecture><CompositeComponent name="c"><ActiveComp name="ghost"/></CompositeComponent></Architecture>`,
	}
	for name, doc := range cases {
		if _, err := DecodeString(doc); err == nil {
			t.Errorf("%s: accepted", name)
		}
	}
}

func TestParseSize(t *testing.T) {
	cases := map[string]int64{
		"600KB": 600 << 10,
		"28KB":  28 << 10,
		"4MB":   4 << 20,
		"1GB":   1 << 30,
		"512":   512,
		"512B":  512,
		" 2KB ": 2048,
	}
	for in, want := range cases {
		got, err := ParseSize(in)
		if err != nil || got != want {
			t.Errorf("ParseSize(%q) = %d, %v; want %d", in, got, err, want)
		}
	}
	for _, bad := range []string{"", "KB", "-1KB", "x", "12.5KB"} {
		if _, err := ParseSize(bad); err == nil {
			t.Errorf("ParseSize(%q) accepted", bad)
		}
	}
}

func TestFormatSizeRoundTrip(t *testing.T) {
	for _, n := range []int64{0, 1, 512, 1024, 28 << 10, 600 << 10, 4 << 20, 1 << 30, 1023, 1025} {
		got, err := ParseSize(FormatSize(n))
		if err != nil || got != n {
			t.Errorf("round trip %d -> %q -> %d, %v", n, FormatSize(n), got, err)
		}
	}
}

func TestDecodeFileMissing(t *testing.T) {
	if _, err := DecodeFile("/nonexistent/arch.xml"); err == nil {
		t.Fatal("missing file accepted")
	}
}
