// Package adl implements the paper's XML architecture description
// language (Fig. 4). Functional components, bindings and the
// non-functional ThreadDomain/MemoryArea containers are serialized in
// the dialect shown in the paper; containers reference functional
// components by name, which is how component *sharing* is expressed on
// the wire.
package adl

import "encoding/xml"

// xmlArchitecture is the document root.
type xmlArchitecture struct {
	XMLName    xml.Name          `xml:"Architecture"`
	Name       string            `xml:"name,attr"`
	Actives    []xmlActive       `xml:"ActiveComponent"`
	Passives   []xmlPassive      `xml:"PassiveComponent"`
	Composites []xmlComposite    `xml:"CompositeComponent"`
	Bindings   []xmlBinding      `xml:"Binding"`
	Areas      []xmlMemoryArea   `xml:"MemoryArea"`
	Domains    []xmlThreadDomain `xml:"ThreadDomain"`
}

type xmlInterface struct {
	Name      string `xml:"name,attr"`
	Role      string `xml:"role,attr"`
	Signature string `xml:"signature,attr"`
}

type xmlContent struct {
	Class string `xml:"class,attr"`
}

type xmlActive struct {
	Name        string         `xml:"name,attr"`
	Type        string         `xml:"type,attr"`
	Periodicity string         `xml:"periodicity,attr,omitempty"`
	Deadline    string         `xml:"deadline,attr,omitempty"`
	Cost        string         `xml:"cost,attr,omitempty"`
	Interfaces  []xmlInterface `xml:"interface"`
	Content     *xmlContent    `xml:"content"`
}

type xmlPassive struct {
	Name       string         `xml:"name,attr"`
	Interfaces []xmlInterface `xml:"interface"`
	Content    *xmlContent    `xml:"content"`
}

type xmlRef struct {
	Name string `xml:"name,attr"`
}

type xmlComposite struct {
	Name          string         `xml:"name,attr"`
	Interfaces    []xmlInterface `xml:"interface"`
	ActiveRefs    []xmlRef       `xml:"ActiveComp"`
	PassiveRefs   []xmlRef       `xml:"PassiveComp"`
	CompositeRefs []xmlRef       `xml:"CompositeComp"`
}

type xmlEndpoint struct {
	Component string `xml:"cname,attr"`
	Interface string `xml:"iname,attr"`
}

type xmlBindDesc struct {
	Protocol   string `xml:"protocol,attr"`
	BufferSize int    `xml:"bufferSize,attr,omitempty"`
	Pattern    string `xml:"pattern,attr,omitempty"`
}

// xmlContract is the optional QoS contract of a binding: a latency
// budget the server promises, the admission rate and burst the client
// may demand, and the overload policy (shed | block | degrade) the
// admission gate enforces beyond them.
type xmlContract struct {
	LatencyBudget string  `xml:"latencyBudget,attr,omitempty"`
	MaxRate       float64 `xml:"maxRate,attr,omitempty"`
	Burst         int     `xml:"burst,attr,omitempty"`
	MissTolerance int     `xml:"missTolerance,attr,omitempty"`
	Policy        string  `xml:"policy,attr,omitempty"`
}

type xmlBinding struct {
	Client   xmlEndpoint  `xml:"client"`
	Server   xmlEndpoint  `xml:"server"`
	Desc     *xmlBindDesc `xml:"BindDesc"`
	Contract *xmlContract `xml:"Contract"`
}

type xmlDomainDesc struct {
	Type     string `xml:"type,attr"`
	Priority int    `xml:"priority,attr,omitempty"`
}

type xmlThreadDomain struct {
	Name        string         `xml:"name,attr"`
	ActiveRefs  []xmlRef       `xml:"ActiveComp"`
	PassiveRefs []xmlRef       `xml:"PassiveComp"`
	Desc        *xmlDomainDesc `xml:"DomainDesc"`
}

type xmlAreaDesc struct {
	Type string `xml:"type,attr"`
	Name string `xml:"name,attr,omitempty"`
	Size string `xml:"size,attr,omitempty"`
}

type xmlMemoryArea struct {
	Name          string            `xml:"name,attr"`
	Domains       []xmlThreadDomain `xml:"ThreadDomain"`
	Areas         []xmlMemoryArea   `xml:"MemoryArea"`
	ActiveRefs    []xmlRef          `xml:"ActiveComp"`
	PassiveRefs   []xmlRef          `xml:"PassiveComp"`
	CompositeRefs []xmlRef          `xml:"CompositeComp"`
	Desc          *xmlAreaDesc      `xml:"AreaDesc"`
}
