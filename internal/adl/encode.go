package adl

import (
	"encoding/xml"
	"fmt"
	"io"
	"strings"

	"soleil/internal/model"
)

// Encode serializes an architecture into the Fig. 4 XML dialect.
func Encode(w io.Writer, a *model.Architecture) error {
	doc, err := toXML(a)
	if err != nil {
		return err
	}
	if _, err := io.WriteString(w, xml.Header); err != nil {
		return err
	}
	enc := xml.NewEncoder(w)
	enc.Indent("", "  ")
	if err := enc.Encode(doc); err != nil {
		return fmt.Errorf("adl: encode: %w", err)
	}
	_, err = io.WriteString(w, "\n")
	return err
}

// EncodeString serializes an architecture to a string.
func EncodeString(a *model.Architecture) (string, error) {
	var sb strings.Builder
	if err := Encode(&sb, a); err != nil {
		return "", err
	}
	return sb.String(), nil
}

func toXML(a *model.Architecture) (*xmlArchitecture, error) {
	doc := &xmlArchitecture{Name: a.Name()}
	for _, c := range a.Components() {
		switch c.Kind() {
		case model.Active:
			doc.Actives = append(doc.Actives, activeToXML(c))
		case model.Passive:
			doc.Passives = append(doc.Passives, xmlPassive{
				Name:       c.Name(),
				Interfaces: interfacesToXML(c),
				Content:    contentToXML(c),
			})
		case model.Composite:
			doc.Composites = append(doc.Composites, compositeToXML(c))
		case model.ThreadDomain:
			if len(c.SupersOfKind(model.MemoryArea)) == 0 {
				doc.Domains = append(doc.Domains, domainToXML(c))
			}
		case model.MemoryArea:
			if len(c.SupersOfKind(model.MemoryArea)) == 0 {
				doc.Areas = append(doc.Areas, areaToXML(c))
			}
		}
	}
	for _, b := range a.Bindings() {
		doc.Bindings = append(doc.Bindings, bindingToXML(b))
	}
	return doc, nil
}

func activeToXML(c *model.Component) xmlActive {
	act := c.Activation()
	x := xmlActive{
		Name:       c.Name(),
		Type:       act.Kind.String(),
		Interfaces: interfacesToXML(c),
		Content:    contentToXML(c),
	}
	if act.Period > 0 {
		x.Periodicity = act.Period.String()
	}
	if act.Deadline > 0 {
		x.Deadline = act.Deadline.String()
	}
	if act.Cost > 0 {
		x.Cost = act.Cost.String()
	}
	return x
}

func interfacesToXML(c *model.Component) []xmlInterface {
	var out []xmlInterface
	for _, it := range c.Interfaces() {
		out = append(out, xmlInterface{
			Name: it.Name, Role: it.Role.String(), Signature: it.Signature,
		})
	}
	return out
}

func contentToXML(c *model.Component) *xmlContent {
	if c.Content() == "" {
		return nil
	}
	return &xmlContent{Class: c.Content()}
}

func refsByKind(c *model.Component) (actives, passives, composites []xmlRef) {
	for _, sub := range c.Subs() {
		ref := xmlRef{Name: sub.Name()}
		switch sub.Kind() {
		case model.Active:
			actives = append(actives, ref)
		case model.Passive:
			passives = append(passives, ref)
		case model.Composite:
			composites = append(composites, ref)
		}
	}
	return actives, passives, composites
}

func compositeToXML(c *model.Component) xmlComposite {
	a, p, comp := refsByKind(c)
	return xmlComposite{
		Name:          c.Name(),
		Interfaces:    interfacesToXML(c),
		ActiveRefs:    a,
		PassiveRefs:   p,
		CompositeRefs: comp,
	}
}

func domainToXML(c *model.Component) xmlThreadDomain {
	d := c.Domain()
	a, p, _ := refsByKind(c)
	return xmlThreadDomain{
		Name:        c.Name(),
		ActiveRefs:  a,
		PassiveRefs: p,
		Desc:        &xmlDomainDesc{Type: d.Kind.String(), Priority: d.Priority},
	}
}

func areaToXML(c *model.Component) xmlMemoryArea {
	d := c.Area()
	a, p, comp := refsByKind(c)
	x := xmlMemoryArea{
		Name:          c.Name(),
		ActiveRefs:    a,
		PassiveRefs:   p,
		CompositeRefs: comp,
		Desc:          &xmlAreaDesc{Type: d.Kind.String()},
	}
	if d.Kind == model.ScopedMemory {
		x.Desc.Name = d.ScopeName
	}
	if d.Size > 0 {
		x.Desc.Size = FormatSize(d.Size)
	}
	for _, sub := range c.Subs() {
		switch sub.Kind() {
		case model.ThreadDomain:
			x.Domains = append(x.Domains, domainToXML(sub))
		case model.MemoryArea:
			x.Areas = append(x.Areas, areaToXML(sub))
		}
	}
	return x
}

func bindingToXML(b *model.Binding) xmlBinding {
	x := xmlBinding{
		Client: xmlEndpoint{Component: b.Client.Component, Interface: b.Client.Interface},
		Server: xmlEndpoint{Component: b.Server.Component, Interface: b.Server.Interface},
		Desc: &xmlBindDesc{
			Protocol:   b.Protocol.String(),
			BufferSize: b.BufferSize,
			Pattern:    b.Pattern,
		},
	}
	if c := b.Contract; c != nil {
		xc := &xmlContract{
			MaxRate:       c.MaxRate,
			Burst:         c.Burst,
			MissTolerance: c.MissTolerance,
			Policy:        c.Policy.String(),
		}
		if c.LatencyBudget > 0 {
			xc.LatencyBudget = c.LatencyBudget.String()
		}
		x.Contract = xc
	}
	return x
}
