package adl

import (
	"bytes"
	"testing"
	"time"

	"soleil/internal/model"
)

const contractADL = `<?xml version="1.0"?>
<Architecture name="contracted">
  <ActiveComponent name="client" type="sporadic">
    <interface name="out" role="client" signature="I"/>
    <content class="ClientImpl"/>
  </ActiveComponent>
  <ActiveComponent name="server" type="sporadic">
    <interface name="in" role="server" signature="I"/>
    <content class="ServerImpl"/>
  </ActiveComponent>
  <Binding>
    <client cname="client" iname="out"/>
    <server cname="server" iname="in"/>
    <BindDesc protocol="asynchronous" bufferSize="8"/>
    <Contract latencyBudget="2ms" maxRate="500" burst="8" missTolerance="3" policy="degrade"/>
  </Binding>
</Architecture>`

func TestContractDecode(t *testing.T) {
	a, err := DecodeString(contractADL)
	if err != nil {
		t.Fatal(err)
	}
	bs := a.Bindings()
	if len(bs) != 1 {
		t.Fatalf("bindings = %d, want 1", len(bs))
	}
	c := bs[0].Contract
	if c == nil {
		t.Fatal("contract not decoded")
	}
	if c.LatencyBudget != 2*time.Millisecond || c.MaxRate != 500 ||
		c.Burst != 8 || c.MissTolerance != 3 || c.Policy != model.Degrade {
		t.Errorf("decoded contract = %+v", c)
	}
}

func TestContractRoundTrip(t *testing.T) {
	a, err := DecodeString(contractADL)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := Encode(&buf, a); err != nil {
		t.Fatal(err)
	}
	back, err := Decode(&buf)
	if err != nil {
		t.Fatalf("re-decoding emitted ADL: %v\n%s", err, buf.String())
	}
	want := a.Bindings()[0].Contract
	got := back.Bindings()[0].Contract
	if got == nil {
		t.Fatalf("contract lost in round trip:\n%s", buf.String())
	}
	if *got != *want {
		t.Errorf("round trip changed the contract: %+v != %+v", got, want)
	}
}

func TestContractDecodeRejectsBadValues(t *testing.T) {
	bad := []struct{ name, attr string }{
		{"policy", `policy="drop"`},
		{"budget", `latencyBudget="fast"`},
		{"rate", `maxRate="-3"`},
	}
	for _, tc := range bad {
		doc := `<?xml version="1.0"?>
<Architecture name="bad">
  <ActiveComponent name="c" type="sporadic">
    <interface name="out" role="client" signature="I"/>
  </ActiveComponent>
  <ActiveComponent name="s" type="sporadic">
    <interface name="in" role="server" signature="I"/>
  </ActiveComponent>
  <Binding>
    <client cname="c" iname="out"/>
    <server cname="s" iname="in"/>
    <BindDesc protocol="asynchronous" bufferSize="4"/>
    <Contract ` + tc.attr + `/>
  </Binding>
</Architecture>`
		if _, err := DecodeString(doc); err == nil {
			t.Errorf("%s: bad contract attribute accepted: %s", tc.name, tc.attr)
		}
	}
}
