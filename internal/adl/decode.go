package adl

import (
	"encoding/xml"
	"fmt"
	"io"
	"os"
	"strings"
	"time"

	"soleil/internal/model"
)

// Decode parses an ADL document into an architecture.
func Decode(r io.Reader) (*model.Architecture, error) {
	var doc xmlArchitecture
	if err := xml.NewDecoder(r).Decode(&doc); err != nil {
		return nil, fmt.Errorf("adl: parse: %w", err)
	}
	return build(&doc)
}

// DecodeString parses an ADL document held in a string.
func DecodeString(s string) (*model.Architecture, error) {
	return Decode(strings.NewReader(s))
}

// DecodeFile parses the ADL document at path.
func DecodeFile(path string) (*model.Architecture, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	a, err := Decode(f)
	if err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	return a, nil
}

func build(doc *xmlArchitecture) (*model.Architecture, error) {
	name := doc.Name
	if name == "" {
		name = "architecture"
	}
	a := model.NewArchitecture(name)

	// Pass 1: functional component definitions.
	for _, x := range doc.Actives {
		if err := buildActive(a, x); err != nil {
			return nil, err
		}
	}
	for _, x := range doc.Passives {
		if err := buildPassive(a, x); err != nil {
			return nil, err
		}
	}
	for _, x := range doc.Composites {
		c, err := a.NewComposite(x.Name)
		if err != nil {
			return nil, err
		}
		if err := addInterfaces(c, x.Interfaces); err != nil {
			return nil, err
		}
	}
	// Pass 2: composite membership (functional hierarchy).
	for _, x := range doc.Composites {
		parent, _ := a.Component(x.Name)
		refs := collectRefs(x.ActiveRefs, x.PassiveRefs, x.CompositeRefs)
		if err := addChildren(a, parent, refs); err != nil {
			return nil, err
		}
	}
	// Pass 3: bindings.
	for _, x := range doc.Bindings {
		if err := buildBinding(a, x); err != nil {
			return nil, err
		}
	}
	// Pass 4: non-functional containers.
	for _, x := range doc.Domains {
		if _, err := buildDomain(a, x); err != nil {
			return nil, err
		}
	}
	for _, x := range doc.Areas {
		if _, err := buildArea(a, x); err != nil {
			return nil, err
		}
	}
	return a, nil
}

func parseDuration(attr, what, comp string) (time.Duration, error) {
	if attr == "" {
		return 0, nil
	}
	d, err := time.ParseDuration(attr)
	if err != nil {
		return 0, fmt.Errorf("adl: component %q: invalid %s %q: %w", comp, what, attr, err)
	}
	return d, nil
}

func buildActive(a *model.Architecture, x xmlActive) error {
	kind, err := model.ParseActivationKind(x.Type)
	if err != nil {
		return fmt.Errorf("adl: component %q: %w", x.Name, err)
	}
	period, err := parseDuration(x.Periodicity, "periodicity", x.Name)
	if err != nil {
		return err
	}
	deadline, err := parseDuration(x.Deadline, "deadline", x.Name)
	if err != nil {
		return err
	}
	cost, err := parseDuration(x.Cost, "cost", x.Name)
	if err != nil {
		return err
	}
	c, err := a.NewActive(x.Name, model.Activation{
		Kind: kind, Period: period, Deadline: deadline, Cost: cost,
	})
	if err != nil {
		return err
	}
	if err := addInterfaces(c, x.Interfaces); err != nil {
		return err
	}
	if x.Content != nil {
		return c.SetContent(x.Content.Class)
	}
	return nil
}

func buildPassive(a *model.Architecture, x xmlPassive) error {
	c, err := a.NewPassive(x.Name)
	if err != nil {
		return err
	}
	if err := addInterfaces(c, x.Interfaces); err != nil {
		return err
	}
	if x.Content != nil {
		return c.SetContent(x.Content.Class)
	}
	return nil
}

func addInterfaces(c *model.Component, itfs []xmlInterface) error {
	for _, it := range itfs {
		role, err := model.ParseRole(it.Role)
		if err != nil {
			return fmt.Errorf("adl: component %q interface %q: %w", c.Name(), it.Name, err)
		}
		err = c.AddInterface(model.Interface{Name: it.Name, Role: role, Signature: it.Signature})
		if err != nil {
			return err
		}
	}
	return nil
}

func collectRefs(groups ...[]xmlRef) []string {
	var out []string
	for _, g := range groups {
		for _, r := range g {
			out = append(out, r.Name)
		}
	}
	return out
}

func addChildren(a *model.Architecture, parent *model.Component, names []string) error {
	for _, n := range names {
		child, ok := a.Component(n)
		if !ok {
			return fmt.Errorf("adl: container %q references unknown component %q", parent.Name(), n)
		}
		if err := a.AddChild(parent, child); err != nil {
			return err
		}
	}
	return nil
}

func buildBinding(a *model.Architecture, x xmlBinding) error {
	if x.Desc == nil {
		return fmt.Errorf("adl: binding %s.%s -> %s.%s lacks a BindDesc",
			x.Client.Component, x.Client.Interface, x.Server.Component, x.Server.Interface)
	}
	proto, err := model.ParseProtocol(x.Desc.Protocol)
	if err != nil {
		return err
	}
	contract, err := buildContract(x)
	if err != nil {
		return err
	}
	_, err = a.Bind(model.Binding{
		Client:     model.Endpoint{Component: x.Client.Component, Interface: x.Client.Interface},
		Server:     model.Endpoint{Component: x.Server.Component, Interface: x.Server.Interface},
		Protocol:   proto,
		BufferSize: x.Desc.BufferSize,
		Pattern:    x.Desc.Pattern,
		Contract:   contract,
	})
	return err
}

func buildContract(x xmlBinding) (*model.Contract, error) {
	if x.Contract == nil {
		return nil, nil
	}
	subject := x.Client.Component + "." + x.Client.Interface
	budget, err := parseDuration(x.Contract.LatencyBudget, "contract latencyBudget", subject)
	if err != nil {
		return nil, err
	}
	policy, err := model.ParseOverloadPolicy(x.Contract.Policy)
	if err != nil {
		return nil, fmt.Errorf("adl: binding %s: %w", subject, err)
	}
	return &model.Contract{
		LatencyBudget: budget,
		MaxRate:       x.Contract.MaxRate,
		Burst:         x.Contract.Burst,
		MissTolerance: x.Contract.MissTolerance,
		Policy:        policy,
	}, nil
}

func buildDomain(a *model.Architecture, x xmlThreadDomain) (*model.Component, error) {
	if x.Desc == nil {
		return nil, fmt.Errorf("adl: thread domain %q lacks a DomainDesc", x.Name)
	}
	kind, err := model.ParseThreadKind(x.Desc.Type)
	if err != nil {
		return nil, fmt.Errorf("adl: thread domain %q: %w", x.Name, err)
	}
	td, err := a.NewThreadDomain(x.Name, model.DomainDesc{Kind: kind, Priority: x.Desc.Priority})
	if err != nil {
		return nil, err
	}
	if err := addChildren(a, td, collectRefs(x.ActiveRefs, x.PassiveRefs)); err != nil {
		return nil, err
	}
	return td, nil
}

func buildArea(a *model.Architecture, x xmlMemoryArea) (*model.Component, error) {
	if x.Desc == nil {
		return nil, fmt.Errorf("adl: memory area %q lacks an AreaDesc", x.Name)
	}
	kind, err := model.ParseMemoryKind(x.Desc.Type)
	if err != nil {
		return nil, fmt.Errorf("adl: memory area %q: %w", x.Name, err)
	}
	var size int64
	if x.Desc.Size != "" {
		size, err = ParseSize(x.Desc.Size)
		if err != nil {
			return nil, fmt.Errorf("adl: memory area %q: %w", x.Name, err)
		}
	}
	ma, err := a.NewMemoryArea(x.Name, model.AreaDesc{
		Kind: kind, ScopeName: x.Desc.Name, Size: size,
	})
	if err != nil {
		return nil, err
	}
	for _, d := range x.Domains {
		td, err := buildDomain(a, d)
		if err != nil {
			return nil, err
		}
		if err := a.AddChild(ma, td); err != nil {
			return nil, err
		}
	}
	for _, nested := range x.Areas {
		child, err := buildArea(a, nested)
		if err != nil {
			return nil, err
		}
		if err := a.AddChild(ma, child); err != nil {
			return nil, err
		}
	}
	refs := collectRefs(x.ActiveRefs, x.PassiveRefs, x.CompositeRefs)
	if err := addChildren(a, ma, refs); err != nil {
		return nil, err
	}
	return ma, nil
}
