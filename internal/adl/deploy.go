package adl

import (
	"encoding/xml"
	"fmt"
	"io"
	"os"
	"strings"

	"soleil/internal/model"
)

// The deployment descriptor is the ADL's second document type: it
// maps the functional components of one architecture onto named
// cluster nodes. Assignments follow the same by-name reference style
// the containers use:
//
//	<Deployment architecture="iMinds">
//	  <Node name="alpha" address="10.0.0.1:7101" metrics="10.0.0.1:9101">
//	    <Assign component="SubscriptionManager"/>
//	  </Node>
//	  ...
//	</Deployment>

type xmlDeployment struct {
	XMLName      xml.Name        `xml:"Deployment"`
	Architecture string          `xml:"architecture,attr"`
	Nodes        []xmlDeployNode `xml:"Node"`
}

type xmlDeployNode struct {
	Name    string      `xml:"name,attr"`
	Address string      `xml:"address,attr"`
	Metrics string      `xml:"metrics,attr,omitempty"`
	Assigns []xmlAssign `xml:"Assign"`
}

type xmlAssign struct {
	Component string `xml:"component,attr"`
}

// DecodeDeployment parses a deployment descriptor.
func DecodeDeployment(r io.Reader) (*model.Deployment, error) {
	var doc xmlDeployment
	if err := xml.NewDecoder(r).Decode(&doc); err != nil {
		return nil, fmt.Errorf("adl: parse deployment: %w", err)
	}
	d := model.NewDeployment(doc.Architecture)
	for _, xn := range doc.Nodes {
		n := &model.DeployNode{Name: xn.Name, Addr: xn.Address, MetricsAddr: xn.Metrics}
		for _, as := range xn.Assigns {
			if as.Component == "" {
				return nil, fmt.Errorf("adl: node %q has an Assign without a component", xn.Name)
			}
			n.Assigned = append(n.Assigned, as.Component)
		}
		if err := d.AddNode(n); err != nil {
			return nil, fmt.Errorf("adl: %w", err)
		}
	}
	return d, nil
}

// DecodeDeploymentString parses a deployment descriptor held in a
// string.
func DecodeDeploymentString(s string) (*model.Deployment, error) {
	return DecodeDeployment(strings.NewReader(s))
}

// DecodeDeploymentFile parses the deployment descriptor at path.
func DecodeDeploymentFile(path string) (*model.Deployment, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	d, err := DecodeDeployment(f)
	if err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	return d, nil
}

// EncodeDeployment serializes a deployment descriptor.
func EncodeDeployment(w io.Writer, d *model.Deployment) error {
	doc := xmlDeployment{Architecture: d.Architecture}
	for _, n := range d.Nodes() {
		xn := xmlDeployNode{Name: n.Name, Address: n.Addr, Metrics: n.MetricsAddr}
		for _, c := range n.Assigned {
			xn.Assigns = append(xn.Assigns, xmlAssign{Component: c})
		}
		doc.Nodes = append(doc.Nodes, xn)
	}
	enc := xml.NewEncoder(w)
	enc.Indent("", "  ")
	if err := enc.Encode(doc); err != nil {
		return fmt.Errorf("adl: encode deployment: %w", err)
	}
	enc.Flush()
	_, err := io.WriteString(w, "\n")
	return err
}

// EncodeDeploymentString serializes a deployment descriptor to a
// string.
func EncodeDeploymentString(d *model.Deployment) (string, error) {
	var sb strings.Builder
	if err := EncodeDeployment(&sb, d); err != nil {
		return "", err
	}
	return sb.String(), nil
}
