package load

import (
	"errors"
	"sync"
	"sync/atomic"
	"time"

	"soleil/internal/assembly"
	"soleil/internal/membrane"
	"soleil/internal/obs"
	"soleil/internal/qos"
	"soleil/internal/rtsj/thread"
)

// Collector is the driver's completion ledger, shared by every sink
// content instance across every deployed system of a run. Messages
// carry their *intended* arrival time as an int64 unix-nanosecond
// payload; Complete records the open-loop latency from that instant,
// so queueing delay accumulated anywhere along the path — including
// before injection — lands in the histogram.
type Collector struct {
	// warmupEnd gates recording: stamps intended before it are
	// settling traffic and contribute no sample.
	warmupEnd atomic.Int64
	// bound, when >0, is the deadline: completions above it count as
	// misses.
	bound int64

	hist      obs.Histogram
	completed obs.Counter
	missed    obs.Counter
	dropped   obs.Counter
	coalesced obs.Counter
}

// NewCollector builds a collector with the given deadline bound
// (0 = no deadline accounting).
func NewCollector(deadline time.Duration) *Collector {
	return &Collector{bound: int64(deadline)}
}

// SetWarmupEnd sets the instant before which completions are ignored.
func (c *Collector) SetWarmupEnd(t time.Time) { c.warmupEnd.Store(t.UnixNano()) }

// Complete records one end-to-end completion of the stamp.
func (c *Collector) Complete(intended int64) {
	if intended < c.warmupEnd.Load() {
		return
	}
	start := time.Unix(0, intended)
	c.hist.ObserveSince(start)
	c.completed.Inc()
	if c.bound > 0 && time.Since(start) > time.Duration(c.bound) {
		c.missed.Inc()
	}
}

// Snapshot returns the latency distribution recorded so far.
func (c *Collector) Snapshot() obs.HistogramSnapshot { return c.hist.Snapshot() }

// Completed returns how many stamps reached the sink after warmup.
func (c *Collector) Completed() int64 { return c.completed.Load() }

// Missed returns how many completions exceeded the deadline bound.
func (c *Collector) Missed() int64 { return c.missed.Load() }

// Dropped returns how many forwards died to backpressure (admission
// gates shedding or bounded buffers refusing).
func (c *Collector) Dropped() int64 { return c.dropped.Load() }

// Coalesced returns how many stamps a reactive component absorbed
// because its derived value did not change.
func (c *Collector) Coalesced() int64 { return c.coalesced.Load() }

// forward sends the stamp out of one port, absorbing backpressure
// into the drop ledger: open-loop senders must never stall on a
// refused hop, they account for it.
func forward(col *Collector, svc *membrane.Services, env *thread.Env, port string, stamp int64) error {
	out, err := svc.Port(port)
	if err != nil {
		return err
	}
	if err := out.Send(env, "put", stamp); err != nil {
		if errors.Is(err, qos.ErrBackpressure) {
			col.dropped.Inc()
			return nil
		}
		return err
	}
	return nil
}

// relayContent is the pipeline stage / fan-in fold: a tiny
// deterministic fold over the stamp, then forward.
type relayContent struct {
	svc *membrane.Services
	col *Collector
	acc atomic.Int64
}

func (r *relayContent) Init(svc *membrane.Services) error { r.svc = svc; return nil }
func (r *relayContent) Activate(*thread.Env) error        { return nil }

func (r *relayContent) Invoke(env *thread.Env, itf, op string, arg any) (any, error) {
	stamp, ok := arg.(int64)
	if !ok {
		return nil, nil
	}
	r.acc.Add(stamp & 0xffff) // the aggregation fold
	return nil, forward(r.col, r.svc, env, "out", stamp)
}

// smState is one state of the hierarchical machine; parent < 0 marks
// a root.
type smState struct {
	parent  int
	handles uint8 // bitmask of the events this state consumes
}

// smContent executes a small hierarchical state machine per message
// (RKH's statechart discipline): the event is dispatched to the
// current leaf state and bubbles up the hierarchy until a state
// handles it; handling transitions the machine deterministically.
// Idle(0) -> {Busy(1) -> {Recv(3), Proc(4)}, Err(2)}.
type smContent struct {
	svc *membrane.Services
	col *Collector

	mu    sync.Mutex
	state int
	steps int64
}

var smStates = []smState{
	{parent: -1, handles: 0b0001}, // 0 Idle: ev0 -> Recv
	{parent: -1, handles: 0b0110}, // 1 Busy: ev1 -> Proc, ev2 -> Err
	{parent: -1, handles: 0b1000}, // 2 Err: ev3 -> Idle
	{parent: 1, handles: 0b0001},  // 3 Busy.Recv: ev0 -> Proc
	{parent: 1, handles: 0b1001},  // 4 Busy.Proc: ev0 -> Recv, ev3 -> Idle
}

// smNext is the transition table: smNext[state][event], -1 = bubble.
var smNext = [5][4]int{
	{3, -1, -1, -1},  // Idle
	{-1, 4, 2, -1},   // Busy
	{-1, -1, -1, 0},  // Err
	{4, -1, -1, -1},  // Busy.Recv
	{3, -1, -1, 0},   // Busy.Proc
}

func (s *smContent) Init(svc *membrane.Services) error { s.svc = svc; return nil }
func (s *smContent) Activate(*thread.Env) error        { return nil }

func (s *smContent) Invoke(env *thread.Env, itf, op string, arg any) (any, error) {
	stamp, ok := arg.(int64)
	if !ok {
		return nil, nil
	}
	s.mu.Lock()
	ev := int(s.steps & 3) // deterministic event stream
	s.steps++
	// Dispatch: bubble from the current state up the hierarchy to the
	// first state whose mask covers the event.
	for st := s.state; st >= 0; st = smStates[st].parent {
		if smStates[st].handles&(1<<uint(ev)) != 0 {
			if next := smNext[st][ev]; next >= 0 {
				s.state = next
			}
			break
		}
	}
	s.mu.Unlock()
	return nil, forward(s.col, s.svc, env, "out", stamp)
}

// reactiveContent propagates only when its derived value changes —
// every other input by design — and alternates which downstream prop
// it feeds; unchanged inputs are coalesced, as a prop-driven
// component graph legitimately does.
type reactiveContent struct {
	svc *membrane.Services
	col *Collector
	n   atomic.Int64
}

func (r *reactiveContent) Init(svc *membrane.Services) error { r.svc = svc; return nil }
func (r *reactiveContent) Activate(*thread.Env) error        { return nil }

func (r *reactiveContent) Invoke(env *thread.Env, itf, op string, arg any) (any, error) {
	stamp, ok := arg.(int64)
	if !ok {
		return nil, nil
	}
	n := r.n.Add(1)
	if n&1 == 0 { // derived value unchanged: coalesce
		r.col.coalesced.Inc()
		return nil, nil
	}
	port := "out0"
	if (n>>1)&1 == 1 {
		if _, err := r.svc.Port("out1"); err == nil {
			port = "out1"
		}
	}
	return nil, forward(r.col, r.svc, env, port, stamp)
}

// sinkContent terminates every path and completes the stamp.
type sinkContent struct {
	col *Collector
}

func (s *sinkContent) Init(*membrane.Services) error { return nil }
func (s *sinkContent) Activate(*thread.Env) error    { return nil }

func (s *sinkContent) Invoke(env *thread.Env, itf, op string, arg any) (any, error) {
	if stamp, ok := arg.(int64); ok {
		s.col.Complete(stamp)
	}
	return nil, nil
}

// RegisterContents registers the load-plane content classes into reg,
// all funneling completions into col. Factories return fresh
// instances, so one registry serves a whole fleet of components (and,
// shared across cluster agents, a whole fleet of nodes).
func RegisterContents(reg *assembly.Registry, col *Collector) error {
	for class, factory := range map[string]func() membrane.Content{
		"LoadRelayImpl":        func() membrane.Content { return &relayContent{col: col} },
		"LoadStateMachineImpl": func() membrane.Content { return &smContent{col: col} },
		"LoadReactiveImpl":     func() membrane.Content { return &reactiveContent{col: col} },
		"LoadSinkImpl":         func() membrane.Content { return &sinkContent{col: col} },
	} {
		if err := reg.Register(class, factory); err != nil {
			return err
		}
	}
	return nil
}
