package load

import (
	"fmt"
	"sync"
	"time"

	"soleil/internal/assembly"
	"soleil/internal/rtsj/thread"
)

// Arrival names an arrival process of the open-loop schedule.
type Arrival string

// The arrival processes.
const (
	// Constant spaces arrivals evenly at the offered rate.
	Constant Arrival = "constant"
	// Burst groups arrivals into back-to-back volleys at the same
	// average rate — the storm the sporadic scenario feeds through
	// its admission gates.
	Burst Arrival = "burst"
	// Ramp sweeps the instantaneous rate linearly from half to
	// one-and-a-half times the offered rate over the run.
	Ramp Arrival = "ramp"
)

// ParseArrival validates an arrival process name from the CLI.
func ParseArrival(s string) (Arrival, error) {
	switch Arrival(s) {
	case Constant, Burst, Ramp:
		return Arrival(s), nil
	default:
		return "", fmt.Errorf("load: unknown arrival process %q (want constant, burst or ramp)", s)
	}
}

// Profile parameterizes one open-loop drive.
type Profile struct {
	// Rate is the offered arrival rate in messages/sec across all
	// entry components.
	Rate float64
	// Duration is the measured window; Warmup precedes it and its
	// completions are excluded from every statistic.
	Duration time.Duration
	Warmup   time.Duration
	// Arrival selects the arrival process (default Constant).
	Arrival Arrival
	// BurstSize is the volley size for the Burst process (default 32).
	BurstSize int
	// Injectors is the injection goroutine count (default 4).
	Injectors int
	// Deadline, when >0, counts completions above it as misses.
	Deadline time.Duration
	// Drain bounds the post-schedule wait for in-flight stamps to
	// complete (default 2s; the wait ends early once completions
	// stop advancing).
	Drain time.Duration
}

func (p Profile) withDefaults() Profile {
	if p.Rate <= 0 {
		p.Rate = 1000
	}
	if p.Duration <= 0 {
		p.Duration = time.Second
	}
	if p.Arrival == "" {
		p.Arrival = Constant
	}
	if p.BurstSize <= 0 {
		p.BurstSize = 32
	}
	if p.Injectors <= 0 {
		p.Injectors = 4
	}
	if p.Drain <= 0 {
		p.Drain = 2 * time.Second
	}
	return p
}

// schedule precomputes the intended arrival offsets for the whole
// window (warmup + measurement). The schedule is a pure function of
// the profile: the driver commits to it before the run and never
// consults completions — that independence is what makes the
// measurement open-loop.
func schedule(p Profile) []time.Duration {
	window := p.Warmup + p.Duration
	total := int(p.Rate * window.Seconds())
	if total < 1 {
		total = 1
	}
	offs := make([]time.Duration, 0, total)
	switch p.Arrival {
	case Burst:
		// Volleys of BurstSize at intervals preserving the average
		// rate: every arrival of a volley shares one intended instant.
		gap := time.Duration(float64(p.BurstSize) / p.Rate * float64(time.Second))
		for t := time.Duration(0); len(offs) < total; t += gap {
			for i := 0; i < p.BurstSize && len(offs) < total; i++ {
				offs = append(offs, t)
			}
		}
	case Ramp:
		// Piecewise-constant approximation of a linear sweep from
		// 0.5x to 1.5x the offered rate: 20 slices, each at its own
		// constant rate.
		const slices = 20
		slice := window / slices
		for s := 0; s < slices; s++ {
			r := p.Rate * (0.5 + float64(s)/float64(slices-1))
			n := int(r * slice.Seconds())
			if n < 1 {
				n = 1
			}
			step := slice / time.Duration(n)
			base := time.Duration(s) * slice
			for i := 0; i < n; i++ {
				offs = append(offs, base+time.Duration(i)*step)
			}
		}
	default: // Constant
		step := time.Duration(float64(time.Second) / p.Rate)
		for i := 0; i < total; i++ {
			offs = append(offs, time.Duration(i)*step)
		}
	}
	return offs
}

// Target is one injectable entry: a node of a deployed system. The
// driver stamps each arrival and invokes the entry's "in" server
// interface directly on the dataplane, exactly as the evaluation
// harness seeds its loops.
type Target struct {
	Sys  *assembly.System
	Node assembly.Node
}

// DriveStats is the injection side of a run's ledger.
type DriveStats struct {
	// Injected counts schedule arrivals whose intended time fell in
	// the measured window; InjectedTotal includes warmup.
	Injected      int64
	InjectedTotal int64
	// Errors counts injections the dataplane refused outright.
	Errors int64
	// MaxLateness is the worst observed gap between an arrival's
	// intended and actual injection instant — the open-loop driver
	// never skips late arrivals, it injects them late and lets the
	// latency distribution show the delay.
	MaxLateness time.Duration
}

// Drive runs the open-loop schedule against the targets and blocks
// until the schedule and the drain window are done. Arrivals are
// assigned round-robin to targets and to injector goroutines; each
// injector sleeps until an arrival's intended instant and injects
// regardless of how late it is running.
func Drive(p Profile, col *Collector, targets []Target) (DriveStats, error) {
	p = p.withDefaults()
	if len(targets) == 0 {
		return DriveStats{}, fmt.Errorf("load: no injection targets")
	}
	offs := schedule(p)

	// One env per (injector, system): envs are not shared across
	// goroutines.
	type injEnv struct {
		env      *thread.Env
		closeEnv func()
	}
	sysIdx := make(map[*assembly.System]int)
	var systems []*assembly.System
	tgtSys := make([]int, len(targets))
	for i, t := range targets {
		idx, ok := sysIdx[t.Sys]
		if !ok {
			idx = len(systems)
			sysIdx[t.Sys] = idx
			systems = append(systems, t.Sys)
		}
		tgtSys[i] = idx
	}
	envs := make([][]injEnv, p.Injectors)
	defer func() {
		for _, row := range envs {
			for _, ie := range row {
				if ie.closeEnv != nil {
					ie.closeEnv()
				}
			}
		}
	}()
	for g := 0; g < p.Injectors; g++ {
		envs[g] = make([]injEnv, len(systems))
		for s, sys := range systems {
			env, closeEnv, err := sys.NewEnv(false)
			if err != nil {
				return DriveStats{}, fmt.Errorf("load: injector env: %w", err)
			}
			envs[g][s] = injEnv{env, closeEnv}
		}
	}

	start := time.Now().Add(20 * time.Millisecond) // schedule epoch
	warmupEnd := start.Add(p.Warmup)
	col.SetWarmupEnd(warmupEnd)

	stats := make([]DriveStats, p.Injectors)
	var wg sync.WaitGroup
	for g := 0; g < p.Injectors; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			st := &stats[g]
			for i := g; i < len(offs); i += p.Injectors {
				intended := start.Add(offs[i])
				if d := time.Until(intended); d > 0 {
					time.Sleep(d)
				}
				// Measured after the sleep so overshoot on a loaded
				// host counts, not only arrivals already behind at the
				// pre-sleep check.
				if late := time.Since(intended); late > st.MaxLateness {
					st.MaxLateness = late
				}
				t := targets[i%len(targets)]
				env := envs[g][tgtSys[i%len(targets)]].env
				if _, err := t.Node.Invoke(env, "in", "put", intended.UnixNano()); err != nil {
					st.Errors++
					continue
				}
				st.InjectedTotal++
				if !intended.Before(warmupEnd) {
					st.Injected++
				}
			}
		}(g)
	}
	wg.Wait()

	// Drain: wait for in-flight stamps, ending early once the full
	// ledger (completed + dropped + coalesced) has been quiescent for a
	// quarter of the drain budget — a fixed short idle window would cut
	// off deep pipelines that complete in bursts spaced further apart.
	ledger := func() int64 { return col.Completed() + col.Dropped() + col.Coalesced() }
	quiet := p.Drain / 4
	if quiet < 150*time.Millisecond {
		quiet = 150 * time.Millisecond
	}
	deadline := time.Now().Add(p.Drain)
	last, lastAdvance := ledger(), time.Now()
	for time.Now().Before(deadline) {
		time.Sleep(50 * time.Millisecond)
		if cur := ledger(); cur != last {
			last, lastAdvance = cur, time.Now()
		} else if time.Since(lastAdvance) >= quiet {
			break
		}
	}

	var out DriveStats
	for _, st := range stats {
		out.Injected += st.Injected
		out.InjectedTotal += st.InjectedTotal
		out.Errors += st.Errors
		if st.MaxLateness > out.MaxLateness {
			out.MaxLateness = st.MaxLateness
		}
	}
	return out, nil
}
