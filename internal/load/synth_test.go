package load

import (
	"fmt"
	"testing"

	"soleil/internal/adl"
	"soleil/internal/validate"
)

// TestSynthesizeValidArchitectures proves the synthesizer's central
// promise: every shape, at small and at large scale, in-process and
// partitioned, yields an architecture that passes full RTSJ
// validation (and a deployment that passes the cross-node rules).
func TestSynthesizeValidArchitectures(t *testing.T) {
	for _, shape := range Shapes {
		for _, size := range []int{4, 40, 400} {
			for _, nodes := range []int{1, 3} {
				name := fmt.Sprintf("%s-%d-n%d", shape, size, nodes)
				t.Run(name, func(t *testing.T) {
					scn, err := Synthesize(Spec{Shape: shape, Components: size, Nodes: nodes, Seed: 7})
					if err != nil {
						t.Fatal(err)
					}
					report := validate.Validate(scn.Arch)
					if !report.OK() {
						t.Fatalf("architecture fails validation: %v", report.Errors())
					}
					if nodes > 1 {
						if scn.Deploy == nil {
							t.Fatal("no deployment descriptor for a multi-node spec")
						}
						dr, err := validate.ValidateDeployment(scn.Arch, scn.Deploy)
						if err != nil {
							t.Fatal(err)
						}
						if !dr.OK() {
							t.Fatalf("deployment fails validation: %v", dr.Errors())
						}
					} else if scn.Deploy != nil {
						t.Fatal("single-node spec produced a deployment descriptor")
					}
					if len(scn.Entries) == 0 {
						t.Fatal("no entry components")
					}
					if _, ok := scn.Arch.Component(scn.Sink); !ok {
						t.Fatal("sink component missing from the architecture")
					}
					got := len(scn.Arch.ComponentsOfKind(0)) // all components incl. containers
					_ = got
					funcs := 0
					for _, c := range scn.Arch.Components() {
						if c.Content() != "" {
							funcs++
						}
					}
					if funcs != scn.Spec.Components {
						t.Fatalf("synthesized %d functional components, want %d", funcs, scn.Spec.Components)
					}
				})
			}
		}
	}
}

// TestSynthesizeSweep sweeps every shape across small component counts
// and many seeds. Regression: the reactive layerer's ceil-division
// sizing could leave empty tail layers, panicking (divide by zero, e.g.
// Components=5/Seed=2) or binding to nonexistent components (e.g.
// Components=6/Seed=1) — combinations the fixed-seed table above never
// hit.
func TestSynthesizeSweep(t *testing.T) {
	for _, shape := range Shapes {
		for components := 4; components <= 24; components++ {
			for seed := int64(0); seed < 24; seed++ {
				scn, err := Synthesize(Spec{Shape: shape, Components: components, Seed: seed})
				if err != nil {
					t.Fatalf("%s components=%d seed=%d: %v", shape, components, seed, err)
				}
				if report := validate.Validate(scn.Arch); !report.OK() {
					t.Fatalf("%s components=%d seed=%d fails validation: %v",
						shape, components, seed, report.Errors())
				}
				if len(scn.Entries) == 0 {
					t.Fatalf("%s components=%d seed=%d: no entry components", shape, components, seed)
				}
			}
		}
	}
}

// TestSynthesizeDeterministic pins the -seed contract at the load
// plane's own scale: equal specs produce byte-identical ADL (and
// deployment) XML, different seeds diverge.
func TestSynthesizeDeterministic(t *testing.T) {
	for _, shape := range Shapes {
		spec := Spec{Shape: shape, Components: 64, Nodes: 3, Seed: 42}
		s1, err := Synthesize(spec)
		if err != nil {
			t.Fatal(err)
		}
		s2, err := Synthesize(spec)
		if err != nil {
			t.Fatal(err)
		}
		x1, err := adl.EncodeString(s1.Arch)
		if err != nil {
			t.Fatal(err)
		}
		x2, err := adl.EncodeString(s2.Arch)
		if err != nil {
			t.Fatal(err)
		}
		if x1 != x2 {
			t.Fatalf("%s: ADL differs between equal-seed runs", shape)
		}
		d1, err := adl.EncodeDeploymentString(s1.Deploy)
		if err != nil {
			t.Fatal(err)
		}
		d2, err := adl.EncodeDeploymentString(s2.Deploy)
		if err != nil {
			t.Fatal(err)
		}
		if d1 != d2 {
			t.Fatalf("%s: deployment XML differs between equal-seed runs", shape)
		}
	}
	// Seeded structure must actually vary for the shapes with seeded
	// choices (fanin arity, reactive layering) — compare the binding
	// topology itself, not the XML, whose name attribute embeds the
	// seed and would differ trivially.
	topology := func(seed int64) string {
		scn, err := Synthesize(Spec{Shape: Fanin, Components: 64, Seed: seed})
		if err != nil {
			t.Fatal(err)
		}
		var out string
		for _, b := range scn.Arch.Bindings() {
			out += b.String() + "\n"
		}
		return out
	}
	base := topology(1)
	diverged := false
	for seed := int64(2); seed < 10; seed++ {
		if topology(seed) != base {
			diverged = true
			break
		}
	}
	if !diverged {
		t.Error("fanin topology identical across seeds 1..9; the seed drives no choice")
	}
}
