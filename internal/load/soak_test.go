package load

import (
	"fmt"
	"runtime"
	"testing"
	"time"
)

// waitGoroutines polls until the goroutine count settles back to the
// baseline (plus scheduler slack) or the timeout expires.
func waitGoroutines(t *testing.T, baseline int, timeout time.Duration) {
	t.Helper()
	deadline := time.Now().Add(timeout)
	for time.Now().Before(deadline) {
		if runtime.NumGoroutine() <= baseline+2 {
			return
		}
		time.Sleep(25 * time.Millisecond)
	}
	buf := make([]byte, 1<<16)
	n := runtime.Stack(buf, true)
	t.Fatalf("goroutines leaked: %d > baseline %d\n%s",
		runtime.NumGoroutine(), baseline, buf[:n])
}

// TestSoakLoadScenarios is the make soak-load smoke: one small
// instance of every scenario shape driven open-loop under -race, each
// covering a different arrival process, plus one 3-node cluster run —
// every system torn down with zero goroutine leaks and at least some
// traffic completing end to end.
func TestSoakLoadScenarios(t *testing.T) {
	if testing.Short() {
		t.Skip("soak scenario, skipped in -short")
	}
	baseline := runtime.NumGoroutine()

	cases := []struct {
		shape   Shape
		arrival Arrival
		nodes   int
	}{
		{Pipeline, Constant, 1},
		{Fanin, Constant, 1},
		{StateMachine, Ramp, 1},
		{Reactive, Constant, 1},
		{Sporadic, Burst, 1},
		{Pipeline, Constant, 3},
	}
	for _, tc := range cases {
		name := fmt.Sprintf("%s-n%d-%s", tc.shape, tc.nodes, tc.arrival)
		t.Run(name, func(t *testing.T) {
			spec := Spec{Shape: tc.shape, Components: 12, Nodes: tc.nodes, Seed: 3}
			if tc.shape == Sporadic {
				// Contract far under the offered burst rate so the
				// admission gates demonstrably engage.
				spec.ContractRate = 40
				spec.ContractBurst = 4
			}
			res, err := Run(
				spec,
				Profile{
					Rate:     400,
					Duration: 400 * time.Millisecond,
					Warmup:   100 * time.Millisecond,
					Arrival:  tc.arrival,
					Deadline: 250 * time.Millisecond,
					Drain:    time.Second,
				},
				RunConfig{Resilient: true},
			)
			if err != nil {
				t.Fatal(err)
			}
			if res.Injected == 0 {
				t.Fatal("open-loop driver injected nothing")
			}
			if res.Completed == 0 {
				t.Fatalf("no completions: injected %d, dropped %d, coalesced %d, errors %d",
					res.Injected, res.Dropped, res.Coalesced, res.InjectErrors)
			}
			if res.InjectErrors > 0 {
				t.Errorf("dataplane refused %d injections", res.InjectErrors)
			}
			if res.P999 == 0 {
				t.Error("no latency distribution recorded")
			}
			if tc.shape == Sporadic && res.Shed == 0 && res.Dropped == 0 {
				t.Error("sporadic burst storm shed nothing; admission gates are not engaged")
			}
			t.Logf("%s: injected %d completed %d shed %d dropped %d coalesced %d p50 %v p99.9 %v",
				name, res.Injected, res.Completed, res.Shed, res.Dropped, res.Coalesced, res.P50, res.P999)
		})
	}
	waitGoroutines(t, baseline, 5*time.Second)
}

// TestRateSearchFindsSustainableRate exercises the binary search on a
// small pipeline with deliberately short trials: it must return a
// sustainable rate at or above the floor with a coherent best trial.
func TestRateSearchFindsSustainableRate(t *testing.T) {
	if testing.Short() {
		t.Skip("soak scenario, skipped in -short")
	}
	sr, err := SearchRate(
		Spec{Shape: Pipeline, Components: 8, Nodes: 1, Seed: 5},
		RunConfig{Resilient: true},
		SearchOptions{
			MinRate: 100, MaxRate: 2000, Iterations: 3,
			Bound:         250 * time.Millisecond,
			TrialDuration: 300 * time.Millisecond, TrialWarmup: 100 * time.Millisecond,
		},
	)
	if err != nil {
		t.Fatal(err)
	}
	if len(sr.Trials) == 0 {
		t.Fatal("search ran no trials")
	}
	if sr.SustainableRate < 100 {
		t.Fatalf("sustainable rate %.0f below the bracket floor; trials: %+v", sr.SustainableRate, sr.Trials[0])
	}
	if sr.Best == nil || sr.Best.Completed == 0 {
		t.Fatal("search returned no best trial")
	}
}
