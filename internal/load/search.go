package load

import (
	"fmt"
	"time"
)

// SearchOptions parameterizes the sustainable-throughput search.
type SearchOptions struct {
	// MinRate/MaxRate bracket the binary search (defaults 100 and
	// 50000 msgs/sec).
	MinRate, MaxRate float64
	// Iterations bounds the bisection (default 6).
	Iterations int
	// Bound is the p99.9 ceiling a rate must stay under to count as
	// sustainable (default 50ms).
	Bound time.Duration
	// MinCompletionRatio is the completed/injected floor (default
	// 0.9); shapes that coalesce or shed by design (reactive,
	// sporadic) should lower it or accept the search reporting the
	// contract's admitted capacity rather than the offered one.
	MinCompletionRatio float64
	// TrialDuration/TrialWarmup shape each probe run (defaults 2s and
	// 500ms).
	TrialDuration, TrialWarmup time.Duration
	// Arrival/BurstSize select each probe's arrival process (defaults
	// Constant and 32, as in Profile).
	Arrival   Arrival
	BurstSize int
}

func (so SearchOptions) withDefaults() SearchOptions {
	if so.MinRate <= 0 {
		so.MinRate = 100
	}
	if so.MaxRate <= 0 {
		so.MaxRate = 50000
	}
	if so.MaxRate < so.MinRate {
		// A cap below the default floor shrinks the floor; never widen
		// the bracket past the caller's ceiling.
		so.MinRate = so.MaxRate
	}
	if so.Iterations <= 0 {
		so.Iterations = 6
	}
	if so.Bound <= 0 {
		so.Bound = 50 * time.Millisecond
	}
	if so.MinCompletionRatio <= 0 {
		so.MinCompletionRatio = 0.9
	}
	if so.TrialDuration <= 0 {
		so.TrialDuration = 2 * time.Second
	}
	if so.TrialWarmup <= 0 {
		so.TrialWarmup = 500 * time.Millisecond
	}
	return so
}

// SearchResult is the outcome of a rate search.
type SearchResult struct {
	// SustainableRate is the highest probed rate whose trial stayed
	// under the bound; 0 if even MinRate failed.
	SustainableRate float64 `json:"sustainableRate"`
	// Best is the result of the trial at SustainableRate (nil if none
	// passed).
	Best *Result `json:"best,omitempty"`
	// Trials records every probe in order.
	Trials []*Result `json:"trials"`
}

// sustainable judges one trial: the tail stays under the bound and
// enough of the injected traffic completed.
func sustainable(r *Result, so SearchOptions) bool {
	if r.P999 > so.Bound {
		return false
	}
	if r.Injected == 0 {
		return false
	}
	return float64(r.Completed) >= so.MinCompletionRatio*float64(r.Injected)
}

// SearchRate binary-searches the highest offered rate the scenario
// sustains: p99.9 under the bound with an acceptable completion
// ratio. Every probe synthesizes and deploys a fresh system, so
// trials cannot contaminate each other's histograms or buffer
// backlogs.
func SearchRate(spec Spec, rc RunConfig, so SearchOptions) (*SearchResult, error) {
	so = so.withDefaults()
	probe := func(rate float64) (*Result, error) {
		return Run(spec, Profile{
			Rate:      rate,
			Duration:  so.TrialDuration,
			Warmup:    so.TrialWarmup,
			Arrival:   so.Arrival,
			BurstSize: so.BurstSize,
			Deadline:  so.Bound,
		}, rc)
	}

	out := &SearchResult{}
	lo, hi := so.MinRate, so.MaxRate

	// The bracket's floor must pass at all, or the answer is "none".
	r, err := probe(lo)
	if err != nil {
		return nil, err
	}
	out.Trials = append(out.Trials, r)
	if !sustainable(r, so) {
		return out, nil
	}
	out.SustainableRate, out.Best = lo, r

	for i := 0; i < so.Iterations && hi-lo > lo*0.05; i++ {
		mid := (lo + hi) / 2
		r, err := probe(mid)
		if err != nil {
			return nil, err
		}
		out.Trials = append(out.Trials, r)
		if sustainable(r, so) {
			lo = mid
			out.SustainableRate, out.Best = mid, r
		} else {
			hi = mid
		}
		if rc.Logf != nil {
			rc.Logf("load: search %s: rate %.0f/s -> p99.9 %v, completed %d/%d (sustainable bracket %.0f..%.0f)",
				spec.Shape, mid, r.P999, r.Completed, r.Injected, lo, hi)
		}
	}
	if out.Best == nil {
		return out, nil
	}
	if out.SustainableRate == 0 {
		return nil, fmt.Errorf("load: rate search reached an inconsistent state")
	}
	return out, nil
}
