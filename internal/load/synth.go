// Package load is the framework's open-loop load plane: a synthesizer
// that grows parameterized architectures to hundreds or thousands of
// components across five workload shapes, an open-loop driver that
// injects traffic on a fixed wall-clock schedule independent of
// completions (coordinated-omission-safe by construction), and a
// reporter that measures sustainable throughput and tail latency per
// execution mode. The paper's evaluation is a single 4-component
// factory pipeline; this package is how the reproduction's perf
// trajectory covers more than one scenario.
package load

import (
	"fmt"
	"math/rand"
	"time"

	"soleil/internal/model"
)

// Shape names one scenario family of the fleet.
type Shape string

// The scenario fleet. Each shape stresses a different axis of the
// runtime: chain depth, fan-in contention, per-component state-machine
// work, change-driven propagation, and admission-gate enforcement.
const (
	// Pipeline is a deep chain of relay stages — the paper's factory
	// pipeline at parameterized depth.
	Pipeline Shape = "pipeline"
	// Fanin is a k-ary aggregation tree: leaves inject, interior
	// stages fold and forward, the root feeds the sink. Stresses
	// many-producers-one-consumer buffers.
	Fanin Shape = "fanin"
	// StateMachine is a chain of hierarchical state-machine active
	// objects (RKH's statechart execution model): every message is
	// dispatched into a nested state hierarchy and bubbles up until
	// handled before being forwarded.
	StateMachine Shape = "statemachine"
	// Reactive is a layered prop-driven graph: components re-derive a
	// value per input and propagate only when it changed (~50% by
	// design), coalescing the rest.
	Reactive Shape = "reactive"
	// Sporadic is a bursty storm through contracted gateway->worker
	// bindings, stressing minimum-interarrival enforcement: admission
	// gates and bounded buffers shed what the contract refuses.
	Sporadic Shape = "sporadic"
)

// Shapes lists the fleet in report order.
var Shapes = []Shape{Pipeline, Fanin, StateMachine, Reactive, Sporadic}

// ParseShape validates a scenario name from the CLI.
func ParseShape(s string) (Shape, error) {
	for _, sh := range Shapes {
		if string(sh) == s {
			return sh, nil
		}
	}
	return "", fmt.Errorf("load: unknown scenario shape %q (want pipeline, fanin, statemachine, reactive or sporadic)", s)
}

// Spec parameterizes one synthesized scenario. The zero values of the
// optional fields are filled by Synthesize; every random choice
// derives from Seed alone, so equal specs produce byte-identical ADL.
type Spec struct {
	Shape Shape
	// Components is the total functional component count including
	// the sink (minimum 4; clamped).
	Components int
	// Nodes is the deployment width: 1 synthesizes no deployment
	// descriptor (in-process), >1 partitions the components into
	// contiguous per-node groups with their own ThreadDomain and
	// MemoryArea (RT14 by construction).
	Nodes int
	// Seed drives every random structural choice.
	Seed int64
	// Contracted attaches a QoS contract to every entry binding
	// (always on for the sporadic shape).
	Contracted bool
	// ContractRate is the contracted admission rate per entry binding
	// in messages/sec (default 2000).
	ContractRate float64
	// ContractBurst is the contracted token-bucket depth (default 64,
	// never above BufferSize — RT16).
	ContractBurst int
	// ContractBudget is the contracted latency budget (default 50ms).
	ContractBudget time.Duration
	// BufferSize bounds every asynchronous buffer (default 256).
	BufferSize int
}

// withDefaults returns the spec with defaults applied.
func (s Spec) withDefaults() Spec {
	if s.Components < 4 {
		s.Components = 4
	}
	if s.Nodes < 1 {
		s.Nodes = 1
	}
	if s.BufferSize <= 0 {
		s.BufferSize = 256
	}
	if s.Shape == Sporadic {
		s.Contracted = true
	}
	if s.Contracted {
		if s.ContractRate <= 0 {
			s.ContractRate = 2000
		}
		if s.ContractBurst <= 0 {
			s.ContractBurst = 64
		}
		if s.ContractBurst > s.BufferSize {
			s.ContractBurst = s.BufferSize
		}
		if s.ContractBudget <= 0 {
			s.ContractBudget = 50 * time.Millisecond
		}
	}
	return s
}

// Scenario is a synthesized, runnable architecture plus the driver's
// map of it.
type Scenario struct {
	Spec Spec
	Arch *model.Architecture
	// Deploy is the deployment descriptor, nil when Spec.Nodes == 1.
	Deploy *model.Deployment
	// Entries are the components the driver injects into (server
	// interface "in").
	Entries []string
	// Sink is the component whose content completes every stamp.
	Sink string
	// Classes maps component name -> content class, for registries.
	Classes map[string]string
}

// edge is one asynchronous hop of the synthesized topology.
type edge struct {
	from, fromItf string
	to            string
	contracted    bool
}

// Synthesize builds a valid architecture for the spec: every
// functional component is a sporadic active (asynchronous bindings
// terminate legally per RT10, and the wall-clock pacer releases them
// on arrival polling), components are grouped into one RealtimeThread
// domain + one immortal MemoryArea per deployment node (RT01, RT04,
// RT05, RT14), all bindings are asynchronous with bounded buffers
// (RT15 for any partition) and carry the deep-copy pattern exactly
// when they cross memory areas (RT07).
func Synthesize(spec Spec) (*Scenario, error) {
	spec = spec.withDefaults()
	rng := rand.New(rand.NewSource(spec.Seed))

	name := fmt.Sprintf("load-%s-%d-n%d-s%d", spec.Shape, spec.Components, spec.Nodes, spec.Seed)
	a := model.NewArchitecture(name)

	m := spec.Components - 1 // functional components besides the sink
	comp := func(i int) string { return fmt.Sprintf("c%04d", i) }
	const sink = "sink"

	var (
		edges   []edge
		entries []string
		classes = make(map[string]string, spec.Components)
	)
	for i := 0; i < m; i++ {
		classes[comp(i)] = "LoadRelayImpl"
	}
	classes[sink] = "LoadSinkImpl"

	switch spec.Shape {
	case Pipeline, StateMachine:
		if spec.Shape == StateMachine {
			for i := 0; i < m; i++ {
				classes[comp(i)] = "LoadStateMachineImpl"
			}
		}
		entries = []string{comp(0)}
		for i := 0; i < m-1; i++ {
			edges = append(edges, edge{from: comp(i), fromItf: "out", to: comp(i + 1), contracted: spec.Contracted && i == 0})
		}
		edges = append(edges, edge{from: comp(m - 1), fromItf: "out", to: sink, contracted: spec.Contracted && m == 1})

	case Fanin:
		arity := rng.Intn(3) + 2 // 2..4-ary aggregation tree
		for i := 1; i < m; i++ {
			parent := (i - 1) / arity
			edges = append(edges, edge{from: comp(i), fromItf: "out", to: comp(parent)})
		}
		edges = append(edges, edge{from: comp(0), fromItf: "out", to: sink, contracted: spec.Contracted && m == 1})
		for i := 0; i < m; i++ {
			if i*arity+1 >= m { // leaf: no children
				entries = append(entries, comp(i))
			}
		}
		if spec.Contracted {
			leaf := map[string]bool{}
			for _, e := range entries {
				leaf[e] = true
			}
			for j := range edges {
				if leaf[edges[j].from] {
					edges[j].contracted = true
				}
			}
		}

	case Reactive:
		layers := rng.Intn(3) + 2 // 2..4 propagation layers
		if layers > m {
			layers = m
		}
		width := (m + layers - 1) / layers
		// ceil division can cover m in fewer rows than requested (e.g.
		// m=4, layers=3 gives width=2, which fills m in 2 rows), leaving
		// empty tail layers whose sizeOf would be <= 0; the indexing
		// below must use the effective layer count.
		layers = (m + width - 1) / width
		layerOf := func(i int) int { return i / width }
		sizeOf := func(l int) int {
			n := m - l*width
			if n > width {
				n = width
			}
			return n
		}
		for i := 0; i < m; i++ {
			l := layerOf(i)
			if l == layers-1 {
				edges = append(edges, edge{from: comp(i), fromItf: "out", to: sink})
				continue
			}
			classes[comp(i)] = "LoadReactiveImpl"
			next, pos := sizeOf(l+1), i-l*width
			t0 := (l+1)*width + pos%next
			edges = append(edges, edge{from: comp(i), fromItf: "out0", to: comp(t0)})
			if next > 1 {
				t1 := (l+1)*width + (pos+1)%next
				edges = append(edges, edge{from: comp(i), fromItf: "out1", to: comp(t1)})
			}
		}
		for i := 0; i < sizeOf(0); i++ {
			entries = append(entries, comp(i))
		}
		if spec.Contracted {
			entry := map[string]bool{}
			for _, e := range entries {
				entry[e] = true
			}
			for j := range edges {
				if entry[edges[j].from] && edges[j].fromItf == "out0" {
					edges[j].contracted = true
				}
			}
		}

	case Sporadic:
		gateways := (m + 1) / 2
		workers := m - gateways
		if workers < 1 {
			return nil, fmt.Errorf("load: sporadic shape needs at least 4 components, got %d", spec.Components)
		}
		for g := 0; g < gateways; g++ {
			entries = append(entries, comp(g))
			w := gateways + g%workers
			edges = append(edges, edge{from: comp(g), fromItf: "out", to: comp(w), contracted: true})
		}
		for w := gateways; w < m; w++ {
			edges = append(edges, edge{from: comp(w), fromItf: "out", to: sink})
		}

	default:
		return nil, fmt.Errorf("load: unknown scenario shape %q", spec.Shape)
	}

	// Components: sporadic actives throughout. The sporadic shape's
	// workers declare a minimum interarrival time — the enforcement
	// the storm stresses; the seeded jitter varies it per scenario.
	mit := time.Duration(0)
	if spec.Shape == Sporadic {
		mit = time.Duration(rng.Intn(400)+100) * time.Microsecond
	}
	var order []string
	for i := 0; i < m; i++ {
		order = append(order, comp(i))
	}
	order = append(order, sink)
	for i, cn := range order {
		act := model.Activation{Kind: model.SporadicActivation}
		if spec.Shape == Sporadic && cn != sink && i >= (m+1)/2 {
			act.Period = mit
		}
		c, err := a.NewActive(cn, act)
		if err != nil {
			return nil, err
		}
		if err := c.SetContent(classes[cn]); err != nil {
			return nil, err
		}
		if err := c.AddInterface(model.Interface{Name: "in", Role: model.ServerRole, Signature: "IMsg"}); err != nil {
			return nil, err
		}
	}
	// Client interfaces, one per outgoing edge.
	for _, e := range edges {
		c, _ := a.Component(e.from)
		if err := c.AddInterface(model.Interface{Name: e.fromItf, Role: model.ClientRole, Signature: "IMsg"}); err != nil {
			return nil, err
		}
	}

	// Per-node groups: contiguous blocks of the creation order, each
	// under its own RealtimeThread domain inside its own immortal
	// area. group(i) is monotone in i, so pipelines cross nodes at
	// block boundaries only.
	group := func(i int) int { return i * spec.Nodes / spec.Components }
	groupOf := make(map[string]int, len(order))
	for i, cn := range order {
		groupOf[cn] = group(i)
	}
	for g := 0; g < spec.Nodes; g++ {
		imm, err := a.NewMemoryArea(fmt.Sprintf("imm%d", g), model.AreaDesc{Kind: model.ImmortalMemory})
		if err != nil {
			return nil, err
		}
		td, err := a.NewThreadDomain(fmt.Sprintf("td%d", g),
			model.DomainDesc{Kind: model.RealtimeThread, Priority: 20})
		if err != nil {
			return nil, err
		}
		if err := a.AddChild(imm, td); err != nil {
			return nil, err
		}
		for i, cn := range order {
			if group(i) != g {
				continue
			}
			c, _ := a.Component(cn)
			if err := a.AddChild(td, c); err != nil {
				return nil, err
			}
		}
	}

	// Bindings: all asynchronous with bounded buffers; deep-copy
	// exactly on area crossings.
	for _, e := range edges {
		b := model.Binding{
			Client:     model.Endpoint{Component: e.from, Interface: e.fromItf},
			Server:     model.Endpoint{Component: e.to, Interface: "in"},
			Protocol:   model.Asynchronous,
			BufferSize: spec.BufferSize,
		}
		if groupOf[e.from] != groupOf[e.to] {
			b.Pattern = "deep-copy"
		}
		if e.contracted && spec.Contracted {
			b.Contract = &model.Contract{
				LatencyBudget: spec.ContractBudget,
				MaxRate:       spec.ContractRate,
				Burst:         spec.ContractBurst,
				Policy:        model.Shed,
			}
		}
		if _, err := a.Bind(b); err != nil {
			return nil, err
		}
	}

	scn := &Scenario{Spec: spec, Arch: a, Entries: entries, Sink: sink, Classes: classes}
	if spec.Nodes > 1 {
		d := model.NewDeployment(a.Name())
		assigned := make([][]string, spec.Nodes)
		for i, cn := range order {
			g := group(i)
			assigned[g] = append(assigned[g], cn)
		}
		for g := 0; g < spec.Nodes; g++ {
			if err := d.AddNode(&model.DeployNode{
				Name:     fmt.Sprintf("n%d", g),
				Addr:     "127.0.0.1:0",
				Assigned: assigned[g],
			}); err != nil {
				return nil, err
			}
		}
		scn.Deploy = d
	}
	return scn, nil
}
