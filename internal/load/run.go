package load

import (
	"fmt"
	"sync"
	"time"

	"soleil/internal/assembly"
	"soleil/internal/cluster"
	"soleil/internal/dist"
	"soleil/internal/obs"
)

// RunConfig tunes how a scenario executes.
type RunConfig struct {
	// Resilient runs the in-process system in the resilient execution
	// mode (panics and errors absorbed); cluster agents are always
	// resilient. Ignored when Spec.Nodes > 1.
	Resilient bool
	// SporadicPoll is the pacer's sporadic drain cadence (default
	// 200µs — tight enough that pacing is not the dominant latency).
	SporadicPoll time.Duration
	// Logf, when set, receives progress lines.
	Logf func(format string, args ...any)
}

func (rc RunConfig) withDefaults() RunConfig {
	if rc.SporadicPoll <= 0 {
		rc.SporadicPoll = 200 * time.Microsecond
	}
	return rc
}

// Result is one scenario run's report row.
type Result struct {
	Scenario   string  `json:"scenario"`
	Shape      string  `json:"shape"`
	Components int     `json:"components"`
	Nodes      int     `json:"nodes"`
	Mode       string  `json:"mode"` // "inproc" | "inproc-resilient" | "cluster-N"
	Contracted bool    `json:"contracted"`
	Arrival    string  `json:"arrival"`
	Seed       int64   `json:"seed"`
	Rate       float64 `json:"offeredRate"`

	Injected       int64 `json:"injected"`
	Completed      int64 `json:"completed"`
	Dropped        int64 `json:"dropped"`
	Coalesced      int64 `json:"coalesced,omitempty"`
	Shed           int64 `json:"shed"`
	DeadlineMisses int64 `json:"deadlineMisses"`
	InjectErrors   int64 `json:"injectErrors,omitempty"`

	// AchievedRate is completions per second of the measured window.
	AchievedRate float64 `json:"achievedRate"`
	// MaxLateness is the driver's worst injection lag behind the
	// schedule (always reported: a loaded driver host shows up here,
	// not as silently omitted arrivals).
	MaxLateness time.Duration `json:"maxLatenessNs"`

	P50  time.Duration `json:"p50Ns"`
	P99  time.Duration `json:"p99Ns"`
	P999 time.Duration `json:"p999Ns"`
	Max  time.Duration `json:"maxNs"`
}

// modeName labels the execution mode of a run.
func modeName(spec Spec, rc RunConfig) string {
	if spec.Nodes > 1 {
		return fmt.Sprintf("cluster-%d", spec.Nodes)
	}
	if rc.Resilient {
		return "inproc-resilient"
	}
	return "inproc"
}

// Run synthesizes the scenario and drives it once with the profile.
// Spec.Nodes == 1 deploys in-process (SOLEIL mode under a wall-clock
// pacer); Nodes > 1 computes a deployment plan and starts one cluster
// agent per node over loopback TCP, injecting into whichever agents
// host the entry components.
func Run(spec Spec, p Profile, rc RunConfig) (*Result, error) {
	rc = rc.withDefaults()
	scn, err := Synthesize(spec)
	if err != nil {
		return nil, err
	}
	spec = scn.Spec

	col := NewCollector(p.Deadline)
	reg := assembly.NewRegistry()
	if err := RegisterContents(reg, col); err != nil {
		return nil, err
	}

	var (
		targets  []Target
		shed     func() int64
		teardown func()
	)
	if spec.Nodes <= 1 {
		metrics := obs.NewRegistry()
		sys, err := assembly.Deploy(scn.Arch, assembly.Config{
			Mode:      assembly.Soleil,
			Registry:  reg,
			Resilient: rc.Resilient,
			Metrics:   metrics,
		})
		if err != nil {
			return nil, err
		}
		pacer, err := assembly.NewPacer(sys, assembly.PacerOptions{SporadicPoll: rc.SporadicPoll})
		if err != nil {
			return nil, err
		}
		if err := pacer.Run(); err != nil {
			return nil, err
		}
		teardown = pacer.Close
		shed = func() int64 { return sumShed(metrics) }
		for _, e := range scn.Entries {
			node, ok := sys.Node(e)
			if !ok {
				pacer.Close()
				return nil, fmt.Errorf("load: entry %q not deployed", e)
			}
			targets = append(targets, Target{Sys: sys, Node: node})
		}
	} else {
		plan, err := cluster.Compute(scn.Arch, scn.Deploy)
		if err != nil {
			return nil, err
		}
		var mu sync.Mutex
		addrs := make(map[string]string)
		resolve := func(node string) (string, error) {
			mu.Lock()
			defer mu.Unlock()
			addr, ok := addrs[node]
			if !ok {
				return "", fmt.Errorf("load: node %s not up yet", node)
			}
			return addr, nil
		}
		var agents []*cluster.Agent
		closeAgents := func() {
			for _, ag := range agents {
				ag.Close()
			}
		}
		for _, np := range plan.Nodes() {
			ag, err := cluster.Start(cluster.AgentConfig{
				Node:     np.Name,
				Plan:     plan,
				Registry: reg,
				Resolver: resolve,
				Dial:     dist.DialConfig{Timeout: 2 * time.Second, Base: time.Millisecond, Max: 20 * time.Millisecond},
				Pacer:    assembly.PacerOptions{SporadicPoll: rc.SporadicPoll},
			})
			if err != nil {
				closeAgents()
				return nil, err
			}
			mu.Lock()
			addrs[np.Name] = ag.Addr()
			mu.Unlock()
			agents = append(agents, ag)
		}
		teardown = closeAgents
		shed = func() int64 {
			var n int64
			for _, ag := range agents {
				n += sumShed(ag.Registry())
			}
			return n
		}
		for _, e := range scn.Entries {
			found := false
			for _, ag := range agents {
				if node, ok := ag.System().Node(e); ok {
					targets = append(targets, Target{Sys: ag.System(), Node: node})
					found = true
					break
				}
			}
			if !found {
				closeAgents()
				return nil, fmt.Errorf("load: no agent hosts entry %q", e)
			}
		}
	}

	if rc.Logf != nil {
		rc.Logf("load: %s: %d components, %d entries, mode %s, %s arrivals at %.0f/s for %v (+%v warmup)",
			spec.Shape, spec.Components, len(targets), modeName(spec, rc), p.withDefaults().Arrival, p.withDefaults().Rate, p.withDefaults().Duration, p.Warmup)
	}
	ds, err := Drive(p, col, targets)
	shedCount := shed()
	teardown()
	if err != nil {
		return nil, err
	}

	p = p.withDefaults()
	snap := col.Snapshot()
	res := &Result{
		Scenario:       scn.Arch.Name(),
		Shape:          string(spec.Shape),
		Components:     spec.Components,
		Nodes:          spec.Nodes,
		Mode:           modeName(spec, rc),
		Contracted:     spec.Contracted,
		Arrival:        string(p.Arrival),
		Seed:           spec.Seed,
		Rate:           p.Rate,
		Injected:       ds.Injected,
		Completed:      col.Completed(),
		Dropped:        col.Dropped(),
		Coalesced:      col.Coalesced(),
		Shed:           shedCount,
		DeadlineMisses: col.Missed(),
		InjectErrors:   ds.Errors,
		AchievedRate:   float64(col.Completed()) / p.Duration.Seconds(),
		MaxLateness:    ds.MaxLateness,
		P50:            snap.Quantile(0.50),
		P99:            snap.Quantile(0.99),
		P999:           snap.Quantile(0.999),
		Max:            time.Duration(snap.Max),
	}
	return res, nil
}

// sumShed totals the shed counts of every admission gate in a
// registry.
func sumShed(reg *obs.Registry) int64 {
	var n int64
	for _, name := range reg.GateNames() {
		if stats, ok := reg.Gate(name); ok {
			n += stats().Shed
		}
	}
	return n
}
