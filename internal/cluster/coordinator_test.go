package cluster

import (
	"encoding/json"
	"io"
	"net/http"
	"strings"
	"testing"
	"time"
)

func TestCoordinatorAggregatesCluster(t *testing.T) {
	c := newTestCluster(t)
	defer c.closeAll()
	c.start(t, "alpha", true)
	c.start(t, "beta", true)
	gamma := c.start(t, "gamma", true)

	waitFor(t, "traffic", 10*time.Second, func() bool { return c.sink.got.Load() >= 5 })

	coord := NewCoordinator(c.plan, func(node string) (string, error) {
		c.mu.Lock()
		defer c.mu.Unlock()
		return c.agents[node].MetricsAddr(), nil
	})

	st := coord.Status()
	if !st.Healthy || len(st.Nodes) != 3 {
		t.Fatalf("cluster status = %+v", st)
	}
	for _, n := range st.Nodes {
		if !n.Reachable || !n.Healthy {
			t.Fatalf("node %s not healthy: %+v", n.Node, n)
		}
	}

	var expo strings.Builder
	if err := coord.WriteMetrics(&expo); err != nil {
		t.Fatal(err)
	}
	got := expo.String()
	for _, want := range []string{
		`node="alpha"`, `node="beta"`, `node="gamma"`,
		`soleil_node_up{node="beta"} 1`,
	} {
		if !strings.Contains(got, want) {
			t.Fatalf("federated exposition missing %q:\n%.2000s", want, got)
		}
	}
	if n := strings.Count(got, "# TYPE soleil_invocations_total counter"); n != 1 {
		t.Fatalf("metric family declared %d times, want once", n)
	}

	// The HTTP face of the same views.
	bound, shutdown, err := coord.Serve("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer shutdown()
	resp, err := http.Get("http://" + bound + "/status")
	if err != nil {
		t.Fatal(err)
	}
	var parsed ClusterStatus
	if err := json.NewDecoder(resp.Body).Decode(&parsed); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK || parsed.Architecture != "pipeline" {
		t.Fatalf("GET /status = %d %+v", resp.StatusCode, parsed)
	}

	// A dead node degrades the view instead of breaking it.
	gamma.Close()
	st = coord.Status()
	if st.Healthy {
		t.Fatal("cluster still healthy with gamma down")
	}
	var downs int
	for _, n := range st.Nodes {
		if !n.Reachable {
			downs++
		}
	}
	if downs != 1 {
		t.Fatalf("%d unreachable nodes, want 1", downs)
	}
	resp, err = http.Get("http://" + bound + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if !strings.Contains(string(body), `soleil_node_up{node="gamma"} 0`) {
		t.Fatalf("federated metrics missing gamma down marker:\n%.1000s", body)
	}
}
