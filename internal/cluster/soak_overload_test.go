package cluster

import (
	"os"
	"runtime"
	"testing"
	"time"

	"soleil/internal/model"
	"soleil/internal/obs"
)

// dumpTimeline writes a merged flight-recorder timeline as
// flightrecorder-<name>.json in the working directory so CI can
// archive it as a workflow artifact. Best-effort: a dump failure is
// reported but never fails the soak itself.
func dumpTimeline(t *testing.T, name string, evs []obs.Event) {
	t.Helper()
	path := "flightrecorder-" + name + ".json"
	f, err := os.Create(path)
	if err != nil {
		t.Logf("flight-recorder dump skipped: %v", err)
		return
	}
	defer f.Close()
	if err := obs.WriteEventsJSON(f, evs); err != nil {
		t.Logf("flight-recorder dump failed: %v", err)
		return
	}
	t.Logf("soak-overload: wrote %d merged flight-recorder events to %s", len(evs), path)
}

// TestSoakOverloadCrossNodeDegrade is the cluster half of the overload
// soak: a degrade contract on the cross-node Sensor->Worker link, a
// Worker on beta that overshoots the latency budget on every message,
// and a Sensor on alpha offering ~5x the contracted rate. The breach
// must propagate to alpha via heartbeat digests — no scraping — flip
// alpha's export gate to shedding, and the merged cross-node
// flight-recorder timeline must show the whole causal chain: beta's
// supervised faults, alpha's remote-breach transition, and the gate
// degrading in response.
func TestSoakOverloadCrossNodeDegrade(t *testing.T) {
	baseline := runtime.NumGoroutine()

	budget := 2 * time.Millisecond
	c := newTestCluster(t, &model.Contract{
		LatencyBudget: budget,
		MaxRate:       200, // sensor offers ~1000/s: 5x overload
		Burst:         10,
		Policy:        model.Degrade,
	})
	// Every message overshoots the 2ms budget; every 25th panics so
	// beta's supervisor contributes lifecycle events to the timeline.
	c.worker.delay.Store(int64(4 * time.Millisecond))
	c.worker.panicEvery = 25
	defer c.closeAll()

	alpha := c.start(t, "alpha", false)
	c.start(t, "beta", false)
	c.start(t, "gamma", false)

	// On failure, archive whatever the recorders captured: CI uploads
	// flightrecorder-*.json as a workflow artifact.
	t.Cleanup(func() {
		if t.Failed() {
			dumpTimeline(t, "crossnode-degrade-failure", c.mergedTimeline())
		}
	})

	linkName := "link Sensor.out->Worker.in"
	stats, ok := alpha.Registry().Link(linkName)
	if !ok {
		t.Fatalf("alpha registry has no %q; links: %v", linkName, alpha.Registry().LinkNames())
	}
	gate, ok := alpha.Registry().Gate(linkName)
	if !ok {
		t.Fatalf("alpha registry has no gate %q", linkName)
	}

	// Phase 1: the server-side breach crosses the node boundary. The
	// gate must flip on the *propagated* digest — beta is never
	// scraped.
	waitFor(t, "digests to reach alpha", 15*time.Second, func() bool {
		return stats().DigestsReceived > 0
	})
	waitFor(t, "remote breach to propagate", 15*time.Second, func() bool {
		return stats().RemoteBreached
	})
	waitFor(t, "gate to observe the breach", 15*time.Second, func() bool {
		return gate().Breached
	})

	// Phase 2: sustained overload while breached. The degrade policy
	// now sheds over-rate messages instead of admitting them, so the
	// shed counter must climb under continuous offered load.
	shedAt := gate().Shed
	waitFor(t, "breach-driven shedding", 15*time.Second, func() bool {
		return gate().Shed > shedAt
	})
	waitFor(t, "shedding to sustain", 15*time.Second, func() bool {
		return gate().Shed >= shedAt+50
	})
	gs := gate()
	if gs.Admitted == 0 {
		t.Fatal("degrade must keep admitting the contracted rate while shedding the excess")
	}
	if gs.Breaches == 0 {
		t.Fatal("gate counted no met->breached transitions")
	}
	if c.worker.inits.Load() < 2 {
		t.Fatalf("worker inits = %d: supervision never restarted the panicking worker", c.worker.inits.Load())
	}

	// Phase 3: the merged cross-node timeline shows the remote-breach
	// -driven degrade transition, in causal order, spanning both nodes.
	evs := c.mergedTimeline()
	dumpTimeline(t, "crossnode-degrade", evs)
	nodes := make(map[string]bool)
	remoteBreachAt, gateReactAt := -1, -1
	for i, ev := range evs {
		nodes[ev.Node] = true
		switch ev.Kind {
		case obs.EvRemoteBreach:
			if ev.Node == "alpha" && remoteBreachAt < 0 {
				remoteBreachAt = i
			}
		case obs.EvGateBreach, obs.EvGateShed:
			if ev.Node == "alpha" && remoteBreachAt >= 0 && gateReactAt < 0 {
				gateReactAt = i
			}
		}
	}
	if remoteBreachAt < 0 {
		t.Fatal("merged timeline has no EvRemoteBreach on alpha")
	}
	if gateReactAt < 0 {
		t.Fatal("merged timeline shows no gate reaction after the remote breach")
	}
	if !nodes["alpha"] || !nodes["beta"] {
		t.Fatalf("timeline is not cross-node: nodes seen = %v", nodes)
	}

	st := stats()
	t.Logf("soak-overload: cluster degrade admitted=%d shed=%d breaches=%d remoteP99=%v digests=%d timeline=%d events across %d nodes",
		gs.Admitted, gs.Shed, gs.Breaches, st.RemoteP99, st.DigestsReceived, len(evs), len(nodes))

	// Phase 4: clean teardown, zero goroutine leaks.
	c.closeAll()
	deadline := time.After(10 * time.Second)
	for runtime.NumGoroutine() > baseline {
		select {
		case <-deadline:
			buf := make([]byte, 1<<16)
			t.Fatalf("goroutines leaked: %d > %d\n%s",
				runtime.NumGoroutine(), baseline, buf[:runtime.Stack(buf, true)])
		default:
			time.Sleep(5 * time.Millisecond)
		}
	}
}
