package cluster

import (
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"soleil/internal/dist"
	"soleil/internal/membrane"
	"soleil/internal/model"
	"soleil/internal/obs"
	"soleil/internal/qos"
	"soleil/internal/rtsj/thread"
)

// outLink is the client half of a cross-node binding: a membrane port
// the planner splices in place of the in-process RTBuffer. Send
// serializes the invocation on the calling thread (the deep-copy
// moment — after it, no reference is shared) into a bounded queue
// with the binding's declared capacity; a writer goroutine transmits
// from the queue so the component's release never blocks on the
// network. A full queue refuses the message with a preallocated typed
// qos.Backpressure (unwrapping to qos.ErrBackpressure), exactly as a
// full in-process buffer or a shedding admission gate would.
type outLink struct {
	link  *Link
	queue chan []byte

	// remote tracks the server component's latency from the digests
	// piggybacked on the link's heartbeats; the link's admission gate
	// probes it to evaluate a cross-node degrade contract.
	remote *remoteSLO

	enqueued atomic.Int64
	sent     atomic.Int64
	dropped  atomic.Int64
	highWm   atomic.Int64

	reject qos.Backpressure
}

var _ membrane.Port = (*outLink)(nil)

func newOutLink(l *Link) *outLink {
	capacity := l.BufferSize
	if capacity <= 0 {
		capacity = 16
	}
	policy := model.Shed
	if l.Contract != nil && l.Contract.Policy != 0 {
		policy = l.Contract.Policy
	}
	return &outLink{
		link:   l,
		queue:  make(chan []byte, capacity),
		reject: qos.Backpressure{Name: "link " + l.ID, Policy: policy},
	}
}

// Send implements membrane.Port: encode now, transmit later. The
// caller's span rides in the envelope so the remote dispatch joins
// its trace.
func (o *outLink) Send(env *thread.Env, op string, arg any) error {
	payload, err := dist.EncodeMessage(o.link.Server.Interface, op, arg, env.Span())
	if err != nil {
		return err
	}
	select {
	case o.queue <- payload:
		n := o.enqueued.Add(1)
		if depth := n - o.sent.Load(); depth > o.highWm.Load() {
			o.highWm.Store(depth)
		}
		return nil
	default:
		o.dropped.Add(1)
		return &o.reject
	}
}

// Call implements membrane.Port. Cross-node bindings are
// asynchronous value messages (RT15); there is nothing to call.
func (o *outLink) Call(*thread.Env, string, any) (any, error) {
	return nil, fmt.Errorf("cluster: link %s is asynchronous; use Send", o.link.ID)
}

func (o *outLink) stats() obs.QueueStats {
	enq, sent := o.enqueued.Load(), o.sent.Load()
	return obs.QueueStats{
		Enqueued:      enq,
		Dequeued:      sent,
		Dropped:       o.dropped.Load(),
		Depth:         int(enq - sent),
		HighWatermark: int(o.highWm.Load()),
		Capacity:      cap(o.queue),
	}
}

// linkWriter owns an outLink's network side: it dials the server
// node with backoff, performs the hello handshake, and drains the
// queue onto the session. A send failure closes the session and
// reconnects — the in-flight message is retransmitted on the fresh
// connection, so a node restart loses at most what the kernel had
// buffered, never what the component had queued.
type linkWriter struct {
	out     *outLink
	local   string // local node name, announced in the hello
	resolve func(node string) (string, error)
	dial    dist.DialConfig
	beat    time.Duration
	logf    func(format string, args ...any)
	rec     *obs.Recorder // may be nil; set before start

	reconnects  atomic.Int64
	staleCloses atomic.Int64
	connected   atomic.Bool

	mu   sync.Mutex
	sess *session
	stop chan struct{}
	done chan struct{}
}

func newLinkWriter(out *outLink, local string, resolve func(string) (string, error),
	dial dist.DialConfig, beat time.Duration, logf func(string, ...any)) *linkWriter {
	if logf == nil {
		logf = func(string, ...any) {}
	}
	// The writer runs its own stop-aware retry loop; each round is a
	// single dial attempt.
	dial.Attempts = 1
	return &linkWriter{
		out: out, local: local, resolve: resolve, dial: dial, beat: beat, logf: logf,
		stop: make(chan struct{}), done: make(chan struct{}),
	}
}

func (w *linkWriter) start() { go w.run() }

func (w *linkWriter) run() {
	defer close(w.done)
	var pending []byte
	for {
		sess := w.connect()
		if sess == nil {
			return // stopped
		}
		w.connected.Store(true)
		// No data flows server->client, but the peer's heartbeats must
		// be drained or they would back up the stream — and the
		// stats-bearing ones feed the remote SLO via the session hooks.
		go func() {
			for {
				if _, err := sess.Receive(); err != nil {
					return
				}
			}
		}()
		for {
			if pending == nil {
				select {
				case <-w.stop:
					_ = sess.Close()
					return
				case pending = <-w.out.queue:
				}
			}
			if err := sess.Send(pending); err != nil {
				_ = sess.Close()
				break // reconnect; pending is retransmitted
			}
			w.out.sent.Add(1)
			pending = nil
		}
		w.connected.Store(false)
		n := w.reconnects.Add(1)
		w.rec.Record(obs.EvLinkReconnect, w.out.link.ID, n, obs.SpanContext{})
		w.logf("cluster: link %s: connection lost, reconnecting", w.out.link.ID)
	}
}

// connect dials the server node until it succeeds or the writer is
// stopped, backing off exponentially between rounds.
func (w *linkWriter) connect() *session {
	delay := w.dial.Base
	if delay <= 0 {
		delay = dist.DefaultRetryBase
	}
	maxDelay := w.dial.Max
	if maxDelay <= 0 {
		maxDelay = dist.DefaultRetryMax
	}
	for {
		select {
		case <-w.stop:
			return nil
		default:
		}
		tr, err := w.dialOnce()
		if err == nil {
			sess := newSession(tr, w.beat, sessionHooks{
				onStats: w.out.remote.ingest,
				onStale: func() {
					w.staleCloses.Add(1)
					w.rec.Record(obs.EvLinkStale, w.out.link.ID, 0, obs.SpanContext{})
				},
			})
			w.mu.Lock()
			stopped := false
			select {
			case <-w.stop:
				stopped = true
			default:
				w.sess = sess
			}
			w.mu.Unlock()
			if stopped {
				_ = sess.Close()
				return nil
			}
			return sess
		}
		w.logf("cluster: link %s: %v", w.out.link.ID, err)
		select {
		case <-w.stop:
			return nil
		case <-time.After(dist.Jitter(delay)):
		}
		if delay *= 2; delay > maxDelay {
			delay = maxDelay
		}
	}
}

func (w *linkWriter) dialOnce() (dist.Transport, error) {
	addr, err := w.resolve(w.out.link.ServerNode)
	if err != nil {
		return nil, err
	}
	tr, err := dist.Dial(addr, w.dial)
	if err != nil {
		return nil, err
	}
	if err := sendHello(tr, hello{Node: w.local, Link: w.out.link.ID}); err != nil {
		_ = tr.Close()
		return nil, err
	}
	return tr, nil
}

// linkStats snapshots the export side of the link for the registry's
// LINK table and the soleil_link_* metric families.
func (w *linkWriter) linkStats() obs.LinkStats {
	st := obs.LinkStats{
		Dir:         "export",
		Connected:   w.connected.Load(),
		Reconnects:  w.reconnects.Load(),
		StaleCloses: w.staleCloses.Load(),
	}
	w.mu.Lock()
	if w.sess != nil {
		st.HeartbeatAge = time.Since(time.Unix(0, w.sess.lastIn.Load()))
	}
	w.mu.Unlock()
	if r := w.out.remote; r != nil {
		st.DigestsReceived = r.digests.Load()
		st.RemoteP99 = time.Duration(r.p99.Load())
		st.RemoteBreached = r.breached.Load() || r.serverBreached.Load()
		st.RemoteCount = r.count.Load()
	}
	return st
}

// Close stops the writer and joins it. Queued but untransmitted
// messages are discarded, like an in-process buffer torn down
// mid-flight.
func (w *linkWriter) Close() {
	w.mu.Lock()
	select {
	case <-w.stop:
	default:
		close(w.stop)
	}
	if w.sess != nil {
		_ = w.sess.Close()
	}
	w.mu.Unlock()
	<-w.done
}
