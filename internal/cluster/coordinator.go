package cluster

import (
	"encoding/json"
	"fmt"
	"io"
	"net"
	"net/http"
	"time"

	"soleil/internal/obs"
)

// NodeStatus is one node's row in the coordinator's cluster view.
type NodeStatus struct {
	Node        string `json:"node"`
	MetricsAddr string `json:"metricsAddr,omitempty"`
	Reachable   bool   `json:"reachable"`
	Healthy     bool   `json:"healthy"`
	Error       string `json:"error,omitempty"`
}

// ClusterStatus aggregates every node's health verdict.
type ClusterStatus struct {
	Architecture string       `json:"architecture"`
	Healthy      bool         `json:"healthy"`
	Nodes        []NodeStatus `json:"nodes"`
}

// Coordinator is the cluster-wide observability view: it scrapes
// each node's /healthz and /metrics and aggregates them — health
// ANDed across nodes, metrics federated with a node label so one
// exposition distinguishes every node's series.
type Coordinator struct {
	plan        *Plan
	metricsAddr func(node string) (string, error)
	client      *http.Client
}

// NewCoordinator builds a coordinator over the plan's nodes.
// metricsAddr overrides where each node's observability endpoint is
// found (deployments on ephemeral ports); nil reads the plan.
func NewCoordinator(plan *Plan, metricsAddr func(node string) (string, error)) *Coordinator {
	if metricsAddr == nil {
		metricsAddr = func(node string) (string, error) {
			np, ok := plan.Node(node)
			if !ok {
				return "", fmt.Errorf("cluster: plan has no node %q", node)
			}
			if np.MetricsAddr == "" {
				return "", fmt.Errorf("cluster: node %s serves no metrics", node)
			}
			return np.MetricsAddr, nil
		}
	}
	return &Coordinator{
		plan:        plan,
		metricsAddr: metricsAddr,
		// Short-lived scrapes of many small endpoints: keeping
		// connections alive would only pin dead peers' sockets.
		client: &http.Client{
			Timeout:   2 * time.Second,
			Transport: &http.Transport{DisableKeepAlives: true},
		},
	}
}

// Status polls every node's /healthz.
func (c *Coordinator) Status() ClusterStatus {
	out := ClusterStatus{Architecture: c.plan.ArchName, Healthy: true}
	for _, np := range c.plan.Nodes() {
		st := NodeStatus{Node: np.Name}
		addr, err := c.metricsAddr(np.Name)
		if err == nil {
			st.MetricsAddr = addr
			var body struct {
				Healthy bool `json:"healthy"`
			}
			code, berr := c.getJSON("http://"+addr+"/healthz", &body)
			if berr != nil {
				err = berr
			} else {
				st.Reachable = true
				st.Healthy = body.Healthy && code == http.StatusOK
			}
		}
		if err != nil {
			st.Error = err.Error()
		}
		if !st.Healthy {
			out.Healthy = false
		}
		out.Nodes = append(out.Nodes, st)
	}
	return out
}

func (c *Coordinator) getJSON(url string, v any) (int, error) {
	resp, err := c.client.Get(url)
	if err != nil {
		return 0, err
	}
	defer resp.Body.Close()
	if err := json.NewDecoder(resp.Body).Decode(v); err != nil {
		return resp.StatusCode, err
	}
	return resp.StatusCode, nil
}

// WriteMetrics federates every node's Prometheus exposition into one,
// each series relabelled with node="<name>". Family declarations are
// deduplicated by the merger (first node to declare a family wins;
// TYPE conflicts drop the offender with a comment). Unreachable nodes
// degrade to a comment plus a soleil_node_up 0 sample instead of
// failing the whole scrape.
func (c *Coordinator) WriteMetrics(w io.Writer) error {
	m := obs.NewExpoMerger(w)
	for _, np := range c.plan.Nodes() {
		up := 0
		if addr, err := c.metricsAddr(np.Name); err == nil {
			if resp, err := c.client.Get("http://" + addr + "/metrics"); err == nil {
				merr := m.WriteSection(np.Name, resp.Body)
				resp.Body.Close()
				if merr != nil {
					return merr
				}
				up = 1
			}
		}
		if up == 0 {
			fmt.Fprintf(w, "# node %s unreachable\n", np.Name)
		}
		fmt.Fprintf(w, "soleil_node_up{node=%q} %d\n", np.Name, up)
	}
	return nil
}

// WriteTop renders every node's human-readable /top view in sequence
// — the cluster-wide `soleil top`.
func (c *Coordinator) WriteTop(w io.Writer) error {
	for _, np := range c.plan.Nodes() {
		fmt.Fprintf(w, "== node %s ==\n", np.Name)
		addr, err := c.metricsAddr(np.Name)
		if err != nil {
			fmt.Fprintf(w, "unreachable: %v\n\n", err)
			continue
		}
		resp, err := c.client.Get("http://" + addr + "/top")
		if err != nil {
			fmt.Fprintf(w, "unreachable: %v\n\n", err)
			continue
		}
		_, _ = io.Copy(w, resp.Body)
		resp.Body.Close()
		fmt.Fprintln(w)
	}
	return nil
}

// FlightRecorderEvents collects every reachable node's flight-recorder
// ring and merges them into one cluster-wide timeline ordered by
// wall-clock time. Events carry their node and span context, so a
// remote breach on the client node stitches to the server-side
// latency that caused it.
func (c *Coordinator) FlightRecorderEvents() []obs.Event {
	var batches [][]obs.Event
	for _, np := range c.plan.Nodes() {
		addr, err := c.metricsAddr(np.Name)
		if err != nil {
			continue
		}
		resp, err := c.client.Get("http://" + addr + "/debug/flightrecorder")
		if err != nil {
			continue
		}
		var events []obs.Event
		if err := json.NewDecoder(resp.Body).Decode(&events); err == nil && len(events) > 0 {
			batches = append(batches, events)
		}
		resp.Body.Close()
	}
	return obs.MergeEvents(batches...)
}

// Serve exposes the coordinator over HTTP:
//
//	/status   aggregated cluster health (JSON; 503 when any node is down)
//	/metrics  federated Prometheus exposition with node labels
//
// It returns the bound address and a shutdown function.
func (c *Coordinator) Serve(addr string) (string, func() error, error) {
	mux := http.NewServeMux()
	mux.HandleFunc("/status", func(w http.ResponseWriter, _ *http.Request) {
		st := c.Status()
		w.Header().Set("Content-Type", "application/json")
		if !st.Healthy {
			w.WriteHeader(http.StatusServiceUnavailable)
		}
		enc := json.NewEncoder(w)
		enc.SetIndent("", "  ")
		_ = enc.Encode(st)
	})
	mux.HandleFunc("/metrics", func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		_ = c.WriteMetrics(w)
	})
	mux.HandleFunc("/top", func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		_ = c.WriteTop(w)
	})
	mux.HandleFunc("/flightrecorder", func(w http.ResponseWriter, r *http.Request) {
		events := c.FlightRecorderEvents()
		switch r.URL.Query().Get("format") {
		case "trace":
			w.Header().Set("Content-Type", "application/json")
			_ = obs.WriteEventsChromeTrace(w, events)
		case "text":
			w.Header().Set("Content-Type", "text/plain; charset=utf-8")
			_ = obs.WriteEventsText(w, events)
		default:
			w.Header().Set("Content-Type", "application/json")
			_ = obs.WriteEventsJSON(w, events)
		}
	})
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return "", nil, err
	}
	srv := &http.Server{Handler: mux}
	go func() { _ = srv.Serve(ln) }()
	return ln.Addr().String(), srv.Close, nil
}
