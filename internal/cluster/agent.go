package cluster

import (
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"soleil/internal/assembly"
	"soleil/internal/dist"
	"soleil/internal/fault"
	"soleil/internal/membrane"
	"soleil/internal/obs"
	"soleil/internal/qos"
	"soleil/internal/reconfig"
)

// AgentConfig configures one node agent.
type AgentConfig struct {
	// Node names this agent's entry in the plan.
	Node string
	// Plan is the cluster plan computed from the architecture and the
	// deployment descriptor.
	Plan *Plan
	// Registry provides content factories for the partition's
	// primitives (same registry every node shares; each node only
	// instantiates its own slice).
	Registry *assembly.Registry
	// ListenAddr overrides the plan's node address — ":0" lets tests
	// and colocated demos pick free ports; Addr() reports the bound
	// address.
	ListenAddr string
	// MetricsAddr overrides the plan's metrics address; empty falls
	// back to the plan, and a plan without one serves no metrics.
	MetricsAddr string
	// Resolver maps a peer node name to its dialable address. Nil
	// resolves through the plan. Deployments that bind ":0" install a
	// resolver over the actually-bound addresses.
	Resolver func(node string) (string, error)
	// Beat is the link heartbeat interval (DefaultBeat when zero).
	Beat time.Duration
	// Dial tunes the link dialer (timeout, keepalive, backoff).
	Dial dist.DialConfig
	// Pacer tunes the wall-clock component driver.
	Pacer assembly.PacerOptions
	// AllowStubs deploys stub content for unregistered classes.
	AllowStubs bool
	// SupervisorInterval is the fault supervisor's poll period
	// (default 2ms).
	SupervisorInterval time.Duration
	// Logf, when set, receives agent lifecycle messages.
	Logf func(format string, args ...any)
}

// Agent is one running node of a cluster deployment: its partition of
// the architecture brought up by assembly, its export links writing
// to peers, its import links feeding local components, the fault
// supervisor restarting failed members, the pacer releasing active
// components in wall-clock time, and the node's observability
// endpoint. Everything is derived from the plan — no hand-written
// transport wiring.
type Agent struct {
	cfg  AgentConfig
	np   *NodePlan
	logf func(format string, args ...any)

	sys   *assembly.System
	mgr   *reconfig.Manager
	sup   *fault.Supervisor
	pacer *assembly.Pacer
	reg   *obs.Registry
	rec   *obs.Recorder
	flog  *fault.Log

	ln      *dist.Listener
	writers []*linkWriter
	outs    map[string]*outLink
	imports map[string]*importState

	metricsAddr string
	obsShutdown func() error

	mu        sync.Mutex
	closed    bool
	sessions  map[dist.Transport]struct{}
	importers []*dist.Importer
	wg        sync.WaitGroup
}

// Start brings the named node of the plan up. On success the agent is
// serving: components run, links dial and accept, metrics are live.
func Start(cfg AgentConfig) (*Agent, error) {
	np, ok := cfg.Plan.Node(cfg.Node)
	if !ok {
		return nil, fmt.Errorf("cluster: plan has no node %q", cfg.Node)
	}
	a := &Agent{
		cfg:      cfg,
		np:       np,
		logf:     cfg.Logf,
		reg:      obs.NewRegistry(),
		rec:      obs.NewRecorder(np.Name, 0),
		flog:     fault.NewLog(256),
		outs:     make(map[string]*outLink),
		imports:  make(map[string]*importState),
		sessions: make(map[dist.Transport]struct{}),
	}
	// Every subsystem holding a ComponentMetrics (interceptors, gates,
	// schedulers, supervisor) reaches the node's black box through the
	// registry.
	a.reg.SetRecorder(a.rec)
	if a.logf == nil {
		a.logf = func(string, ...any) {}
	}
	if err := a.start(); err != nil {
		a.Close()
		return nil, err
	}
	return a, nil
}

func (a *Agent) start() error {
	sys, err := assembly.Deploy(a.np.Arch, assembly.Config{
		Mode:       assembly.Soleil,
		Registry:   a.cfg.Registry,
		Resilient:  true,
		AllowStubs: a.cfg.AllowStubs,
		Metrics:    a.reg,
		Interceptors: func(component string) []membrane.Interceptor {
			return []membrane.Interceptor{fault.NewPanicInterceptor(component, a.flog, nil)}
		},
	})
	if err != nil {
		return fmt.Errorf("cluster: node %s: %w", a.np.Name, err)
	}
	a.sys = sys
	if a.mgr, err = reconfig.NewManager(sys); err != nil {
		return err
	}

	// Node-level supervision: every primitive of the partition is
	// watched; a failed component restarts in place while the links
	// keep buffering.
	if a.sup, err = fault.NewSupervisor(a.mgr, fault.WithLog(a.flog), fault.WithRegistry(a.reg)); err != nil {
		return err
	}
	for _, name := range a.np.Primitives {
		name := name
		a.sup.Watch(name,
			fault.Policy{Directive: fault.RestartOneForOne, MaxRestarts: 10, Window: time.Second},
			fault.FailureProbe(func() (bool, error) { return a.sys.ComponentFailed(name) }))
	}
	interval := a.cfg.SupervisorInterval
	if interval <= 0 {
		interval = 2 * time.Millisecond
	}
	a.sup.Start(interval)

	// The import side: per-link bookkeeping first (serveConn looks it
	// up), then listen for peers carrying our inbound links.
	for _, l := range a.np.Imports {
		ist := &importState{link: l}
		a.imports[l.ID] = ist
		a.reg.RegisterLink("link "+l.ID, ist.linkStats)
	}
	listenAddr := a.cfg.ListenAddr
	if listenAddr == "" {
		listenAddr = a.np.Addr
	}
	if a.ln, err = dist.Listen(listenAddr); err != nil {
		return fmt.Errorf("cluster: node %s: %w", a.np.Name, err)
	}
	a.wg.Add(1)
	go a.acceptLoop()

	// The export side: splice an outLink port over each cross-node
	// client interface and start its writer.
	resolve := a.cfg.Resolver
	if resolve == nil {
		plan := a.cfg.Plan
		resolve = func(node string) (string, error) {
			peer, ok := plan.Node(node)
			if !ok {
				return "", fmt.Errorf("cluster: plan has no node %q", node)
			}
			return peer.Addr, nil
		}
	}
	for _, l := range a.np.Exports {
		out := newOutLink(l)
		name := "link " + l.ID
		// The server side of the link piggybacks its latency digest
		// onto heartbeats; remote reconstructs it here so the gate's
		// SLO probe can judge the server's p99 from this node.
		var budget time.Duration
		if l.Contract != nil {
			budget = l.Contract.LatencyBudget
		}
		out.remote = newRemoteSLO(name, budget, a.cfg.Beat, a.rec)
		// A contracted link is admission-gated before its queue: the
		// client node sheds or rate-limits locally instead of loading
		// the wire. With a latency budget the breach probe is wired to
		// the propagated server-side digest — the cross-node degrade
		// contract RT17 could previously only warn about.
		var port membrane.Port = out
		if gate := qos.NewGate(name, l.Contract); gate != nil {
			gate.SetRecorder(a.rec)
			if budget > 0 {
				gate.SetBreachProbe(out.remote.probe)
			}
			port = membrane.NewGatedPort(gate, out)
			a.reg.RegisterGate(name, membrane.GateStats(gate))
		}
		if err := a.sys.BindPort(l.Client.Component, l.Client.Interface, port); err != nil {
			return fmt.Errorf("cluster: node %s: export %s: %w", a.np.Name, l.ID, err)
		}
		a.outs[l.ID] = out
		a.reg.RegisterQueue(name, out.stats)
		w := newLinkWriter(out, a.np.Name, resolve, a.cfg.Dial, a.cfg.Beat, a.logf)
		w.rec = a.rec
		a.writers = append(a.writers, w)
		a.reg.RegisterLink(name, w.linkStats)
		w.start()
	}

	// Wall-clock execution of the partition's active components.
	if a.pacer, err = assembly.NewPacer(sys, a.cfg.Pacer); err != nil {
		return err
	}
	if err = a.pacer.Run(); err != nil {
		return err
	}

	metricsAddr := a.cfg.MetricsAddr
	if metricsAddr == "" {
		metricsAddr = a.np.MetricsAddr
	}
	if metricsAddr != "" {
		bound, shutdown, err := obs.Serve(metricsAddr, obs.HandlerOptions{
			Registry: a.reg,
			Recorder: a.rec,
			Arch:     func() any { return a.mgr.Introspect() },
		})
		if err != nil {
			return fmt.Errorf("cluster: node %s: metrics: %w", a.np.Name, err)
		}
		a.metricsAddr, a.obsShutdown = bound, shutdown
	}
	a.logf("cluster: node %s up: partition %s, %d exports, %d imports, listening on %s",
		a.np.Name, a.np.Arch.Name(), len(a.np.Exports), len(a.np.Imports), a.Addr())
	return nil
}

func (a *Agent) acceptLoop() {
	defer a.wg.Done()
	for {
		tr, err := a.ln.Accept()
		if err != nil {
			return
		}
		if !a.track(tr) {
			_ = tr.Close()
			return
		}
		a.wg.Add(1)
		go a.serveConn(tr)
	}
}

// serveConn handshakes one inbound connection and pumps it into the
// link's server component until it dies; the dialing side reconnects
// through a fresh connection.
func (a *Agent) serveConn(tr dist.Transport) {
	defer a.wg.Done()
	defer a.untrack(tr)
	h, err := readHello(tr)
	if err != nil {
		_ = tr.Close()
		return
	}
	var link *Link
	for _, l := range a.np.Imports {
		if l.ID == h.Link {
			link = l
			break
		}
	}
	if link == nil {
		a.logf("cluster: node %s: peer %s offered unknown link %q", a.np.Name, h.Node, h.Link)
		_ = tr.Close()
		return
	}
	ist := a.imports[link.ID]
	sess := newSession(tr, a.cfg.Beat, sessionHooks{
		stats: a.digestProvider(link, ist),
		onStale: func() {
			ist.staleCloses.Add(1)
			a.rec.Record(obs.EvLinkStale, link.ID, 0, obs.SpanContext{})
		},
	})
	if !a.track(sess) {
		_ = sess.Close()
		return
	}
	defer a.untrack(sess)
	ist.sess.Store(sess)
	ist.sessionsUp.Add(1)
	ist.connected.Store(true)
	defer ist.connected.Store(false)
	imp, err := dist.Import(a.sys, link.Server.Component, sess)
	if err != nil {
		a.logf("cluster: node %s: import %s: %v", a.np.Name, link.ID, err)
		_ = sess.Close()
		return
	}
	// Resilient delivery: a decode or dispatch error drops the one
	// message (the supervisor handles the failing component); only
	// transport death ends the pump.
	imp.SetErrorHandler(func(err error) bool {
		a.logf("cluster: node %s: link %s: absorbed %v", a.np.Name, link.ID, err)
		return true
	})
	a.mu.Lock()
	a.importers = append(a.importers, imp)
	a.mu.Unlock()
	a.logf("cluster: node %s: link %s connected from %s", a.np.Name, link.ID, h.Node)
	imp.Serve()
	_ = sess.Close()
}

// importState is the server-side bookkeeping of one inbound link:
// session churn and the digests piggybacked back to the client.
type importState struct {
	link *Link

	connected   atomic.Bool
	sessionsUp  atomic.Int64
	staleCloses atomic.Int64
	digestsSent atomic.Int64
	sess        atomic.Pointer[session]
}

func (ist *importState) linkStats() obs.LinkStats {
	st := obs.LinkStats{
		Dir:         "import",
		Connected:   ist.connected.Load(),
		StaleCloses: ist.staleCloses.Load(),
		DigestsSent: ist.digestsSent.Load(),
	}
	if n := ist.sessionsUp.Load(); n > 1 {
		st.Reconnects = n - 1
	}
	if s := ist.sess.Load(); s != nil {
		st.HeartbeatAge = time.Since(time.Unix(0, s.lastIn.Load()))
	}
	return st
}

// digestProvider builds the stats hook of one inbound link's session:
// every beat tick it folds the server component's latency series on
// the link's target interface into a reused snapshot, judges the
// contract server-side (flags byte), and returns the encoded digest
// to ride the heartbeat. Steady-state it allocates nothing — the
// snapshot, the scratch buffer and the digest encoding are all
// reused.
func (a *Agent) digestProvider(link *Link, ist *importState) func() []byte {
	cm := a.reg.Component(link.Server.Component)
	itf := link.Server.Interface
	var threshold time.Duration
	if link.Contract != nil && link.Contract.LatencyBudget > 0 {
		// Same 80%-of-budget early warning the degrade gates use.
		threshold = link.Contract.LatencyBudget * 4 / 5
	}
	var snap obs.HistogramSnapshot
	var buf []byte
	return func() []byte {
		if cm.SnapshotInterface(itf, &snap) == 0 || snap.Count == 0 {
			return nil // nothing observed yet: send a plain beat
		}
		var flags byte
		if threshold > 0 && snap.Quantile(0.99) > threshold {
			flags |= obs.DigestFlagBreached
		}
		buf = obs.AppendDigest(buf[:0], &snap, flags)
		ist.digestsSent.Add(1)
		return buf
	}
}

// track registers a live transport for teardown; it reports false
// once the agent is closing.
func (a *Agent) track(tr dist.Transport) bool {
	a.mu.Lock()
	defer a.mu.Unlock()
	if a.closed {
		return false
	}
	a.sessions[tr] = struct{}{}
	return true
}

func (a *Agent) untrack(tr dist.Transport) {
	a.mu.Lock()
	delete(a.sessions, tr)
	a.mu.Unlock()
}

// Node returns the agent's node name.
func (a *Agent) Node() string { return a.np.Name }

// Addr returns the bound link-listener address.
func (a *Agent) Addr() string {
	if a.ln == nil {
		return ""
	}
	return a.ln.Addr()
}

// MetricsAddr returns the bound observability address ("" when the
// node serves none).
func (a *Agent) MetricsAddr() string { return a.metricsAddr }

// System exposes the node's deployed partition.
func (a *Agent) System() *assembly.System { return a.sys }

// Registry exposes the node's metrics registry.
func (a *Agent) Registry() *obs.Registry { return a.reg }

// FlightRecorder exposes the node's always-on event ring.
func (a *Agent) FlightRecorder() *obs.Recorder { return a.rec }

// Delivered sums the messages all inbound links have dispatched into
// local components.
func (a *Agent) Delivered() int64 {
	a.mu.Lock()
	defer a.mu.Unlock()
	var n int64
	for _, imp := range a.importers {
		n += imp.Delivered()
	}
	return n
}

// Reconnects sums the export links' reconnection events.
func (a *Agent) Reconnects() int64 {
	var n int64
	for _, w := range a.writers {
		n += w.reconnects.Load()
	}
	return n
}

// Close tears the node down: pacing stops, writers and sessions
// close, the listener and supervisor shut down, every goroutine is
// joined. Close is idempotent.
func (a *Agent) Close() {
	a.mu.Lock()
	if a.closed {
		a.mu.Unlock()
		return
	}
	a.closed = true
	open := make([]dist.Transport, 0, len(a.sessions))
	for tr := range a.sessions {
		open = append(open, tr)
	}
	a.mu.Unlock()

	if a.pacer != nil {
		a.pacer.Close()
	}
	for _, w := range a.writers {
		w.Close()
	}
	if a.ln != nil {
		_ = a.ln.Close()
	}
	for _, tr := range open {
		_ = tr.Close()
	}
	if a.sup != nil {
		a.sup.Close()
	}
	a.wg.Wait()
	if a.obsShutdown != nil {
		_ = a.obsShutdown()
	}
	a.rec.Close()
	a.logf("cluster: node %s down", a.np.Name)
}
