package cluster

import (
	"errors"
	"fmt"
	"io"
	"net/http"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"soleil/internal/assembly"
	"soleil/internal/dist"
	"soleil/internal/membrane"
	"soleil/internal/model"
	"soleil/internal/obs"
	"soleil/internal/rtsj/thread"
)

// --- pipeline contents -------------------------------------------------------------

type clSensor struct {
	svc  *membrane.Services
	sent atomic.Int64
}

func (s *clSensor) Init(svc *membrane.Services) error { s.svc = svc; return nil }

func (s *clSensor) Invoke(*thread.Env, string, string, any) (any, error) {
	return nil, errors.New("sensor serves nothing")
}

func (s *clSensor) Activate(env *thread.Env) error {
	port, err := s.svc.Port("out")
	if err != nil {
		return err
	}
	if err := port.Send(env, "put", int(s.sent.Load())); err != nil {
		// Backpressure while a peer is down is expected load shedding,
		// not a component failure.
		if errors.Is(err, dist.ErrBackpressure) {
			return nil
		}
		return err
	}
	s.sent.Add(1)
	return nil
}

type clWorker struct {
	svc        *membrane.Services
	seen       atomic.Int64
	inits      atomic.Int64
	panicEvery int64
	delay      atomic.Int64 // artificial per-message latency, ns
}

func (w *clWorker) Init(svc *membrane.Services) error { w.svc = svc; w.inits.Add(1); return nil }

func (w *clWorker) Invoke(env *thread.Env, itf, op string, arg any) (any, error) {
	n := w.seen.Add(1)
	if w.panicEvery > 0 && n%w.panicEvery == 0 {
		panic(fmt.Sprintf("worker fault on message %d", n))
	}
	if d := w.delay.Load(); d > 0 {
		time.Sleep(time.Duration(d))
	}
	cache, err := w.svc.Port("cache")
	if err != nil {
		return nil, err
	}
	if _, err := cache.Call(env, "get", arg); err != nil {
		return nil, err
	}
	out, err := w.svc.Port("out")
	if err != nil {
		return nil, err
	}
	if err := out.Send(env, "put", arg); err != nil && !errors.Is(err, dist.ErrBackpressure) {
		return nil, err
	}
	return nil, nil
}

func (w *clWorker) Activate(*thread.Env) error { return nil }

type clCache struct {
	hits atomic.Int64
}

func (c *clCache) Init(*membrane.Services) error { return nil }

func (c *clCache) Invoke(_ *thread.Env, _, _ string, arg any) (any, error) {
	c.hits.Add(1)
	return arg, nil
}

func (c *clCache) Activate(*thread.Env) error { return nil }

type clSink struct {
	got atomic.Int64
}

func (s *clSink) Init(*membrane.Services) error { return nil }

func (s *clSink) Invoke(*thread.Env, string, string, any) (any, error) {
	s.got.Add(1)
	return nil, nil
}

func (s *clSink) Activate(*thread.Env) error { return nil }

// --- harness -----------------------------------------------------------------------

// testCluster runs the pipeline plan in-process: every node listens
// on an ephemeral loopback port and a shared resolver maps node names
// to whatever was actually bound — the cluster equivalent of ":0".
type testCluster struct {
	plan *Plan
	reg  *assembly.Registry

	sensor *clSensor
	worker *clWorker
	cache  *clCache
	sink   *clSink

	mu        sync.Mutex
	addrs     map[string]string
	agents    map[string]*Agent
	recorders []*obs.Recorder // every agent ever started, kills and restarts included
}

func newTestCluster(t *testing.T, contract ...*model.Contract) *testCluster {
	t.Helper()
	a := pipelineArch(t, model.Asynchronous, contract...)
	d := pipelineDeployment(t, a)
	plan, err := Compute(a, d)
	if err != nil {
		t.Fatal(err)
	}
	c := &testCluster{
		plan:   plan,
		reg:    assembly.NewRegistry(),
		sensor: &clSensor{},
		worker: &clWorker{},
		cache:  &clCache{},
		sink:   &clSink{},
		addrs:  make(map[string]string),
		agents: make(map[string]*Agent),
	}
	must(t, c.reg.Register("SensorImpl", func() membrane.Content { return c.sensor }))
	must(t, c.reg.Register("WorkerImpl", func() membrane.Content { return c.worker }))
	must(t, c.reg.Register("CacheImpl", func() membrane.Content { return c.cache }))
	must(t, c.reg.Register("SinkImpl", func() membrane.Content { return c.sink }))
	return c
}

func (c *testCluster) resolve(node string) (string, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	addr, ok := c.addrs[node]
	if !ok {
		return "", fmt.Errorf("node %s not up yet", node)
	}
	return addr, nil
}

func (c *testCluster) start(t *testing.T, node string, metrics bool) *Agent {
	t.Helper()
	cfg := AgentConfig{
		Node:       node,
		Plan:       c.plan,
		Registry:   c.reg,
		ListenAddr: "127.0.0.1:0",
		Resolver:   c.resolve,
		Beat:       20 * time.Millisecond,
		Dial:       dist.DialConfig{Timeout: 2 * time.Second, Base: 2 * time.Millisecond, Max: 50 * time.Millisecond},
		Logf:       t.Logf,
	}
	if metrics {
		cfg.MetricsAddr = "127.0.0.1:0"
	}
	ag, err := Start(cfg)
	if err != nil {
		t.Fatalf("start %s: %v", node, err)
	}
	c.mu.Lock()
	c.addrs[node] = ag.Addr()
	c.agents[node] = ag
	c.recorders = append(c.recorders, ag.FlightRecorder())
	c.mu.Unlock()
	return ag
}

// mergedTimeline stitches the flight-recorder rings of every agent
// the cluster ever started (restarted incarnations included) into one
// cross-node timeline. Rings stay readable after Close, so this works
// in failure cleanups too.
func (c *testCluster) mergedTimeline() []obs.Event {
	c.mu.Lock()
	recs := append([]*obs.Recorder(nil), c.recorders...)
	c.mu.Unlock()
	batches := make([][]obs.Event, 0, len(recs))
	for _, r := range recs {
		batches = append(batches, r.Events())
	}
	return obs.MergeEvents(batches...)
}

func (c *testCluster) closeAll() {
	c.mu.Lock()
	agents := make([]*Agent, 0, len(c.agents))
	for _, ag := range c.agents {
		agents = append(agents, ag)
	}
	c.agents = make(map[string]*Agent)
	c.mu.Unlock()
	for _, ag := range agents {
		ag.Close()
	}
}

func waitFor(t *testing.T, what string, timeout time.Duration, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(timeout)
	for !cond() {
		if time.Now().After(deadline) {
			t.Fatalf("timed out waiting for %s", what)
		}
		time.Sleep(2 * time.Millisecond)
	}
}

// --- tests -------------------------------------------------------------------------

func TestClusterThreeNodePipeline(t *testing.T) {
	c := newTestCluster(t)
	defer c.closeAll()

	// Peers may come up in any order: alpha dials beta before beta's
	// address is even known and converges via backoff.
	alpha := c.start(t, "alpha", false)
	beta := c.start(t, "beta", true)
	gamma := c.start(t, "gamma", false)

	waitFor(t, "sink to see 20 messages", 10*time.Second, func() bool { return c.sink.got.Load() >= 20 })
	if c.cache.hits.Load() == 0 {
		t.Fatal("worker never reached its co-located cache")
	}
	if beta.Delivered() == 0 || gamma.Delivered() == 0 {
		t.Fatalf("import counters flat: beta=%d gamma=%d", beta.Delivered(), gamma.Delivered())
	}
	if alpha.Delivered() != 0 {
		t.Fatalf("alpha imports nothing but delivered %d", alpha.Delivered())
	}

	// The node observability endpoint shows the link queue.
	resp, err := http.Get("http://" + beta.MetricsAddr() + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if !strings.Contains(string(body), "queue") {
		t.Fatalf("beta /metrics has no queue series:\n%s", body)
	}
	hz, err := http.Get("http://" + beta.MetricsAddr() + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	hz.Body.Close()
	if hz.StatusCode != http.StatusOK {
		t.Fatalf("beta /healthz = %d", hz.StatusCode)
	}
}

func TestAgentRejectsUnknownLink(t *testing.T) {
	c := newTestCluster(t)
	defer c.closeAll()
	gamma := c.start(t, "gamma", false)

	tr, err := dist.Dial(gamma.Addr(), dist.DialConfig{})
	if err != nil {
		t.Fatal(err)
	}
	defer tr.Close()
	if err := sendHello(tr, hello{Node: "mallory", Link: "no-such-link"}); err != nil {
		t.Fatal(err)
	}
	done := make(chan error, 1)
	go func() {
		_, err := tr.Receive()
		done <- err
	}()
	select {
	case err := <-done:
		if err == nil {
			t.Fatal("agent accepted an unknown link")
		}
	case <-time.After(5 * time.Second):
		t.Fatal("agent left the unknown-link connection open")
	}
}

func TestStartUnknownNode(t *testing.T) {
	c := newTestCluster(t)
	if _, err := Start(AgentConfig{Node: "nope", Plan: c.plan, Registry: c.reg}); err == nil {
		t.Fatal("unknown node must be refused")
	}
}
