package cluster

import (
	"sync"
	"sync/atomic"
	"time"

	"soleil/internal/obs"
)

// remoteStaleFactor bounds how long a propagated digest keeps driving
// a gate after the last stats frame: a remote observation older than
// remoteStaleFactor beats is evidence of a dead or partitioned link,
// not of a healthy server, so the breach probe turns permissive
// rather than shedding on stale data.
const remoteStaleFactor = 16

// remoteSLO is the client-side view of a server component's latency,
// reconstructed from the histogram digests the server piggybacks onto
// the link's heartbeats. It is the missing half of RT17: a degrade
// contract on a cross-node binding can now evaluate the *server's*
// p99 instead of going unwired because the histogram lives on the
// other node.
type remoteSLO struct {
	name       string        // "link <id>", for events and registration
	threshold  int64         // ns; breach when p99 exceeds it (0 = no latency contract)
	staleAfter time.Duration // ignore digests older than this in probe()
	rec        *obs.Recorder // may be nil; obs.Recorder methods are nil-safe

	// mu serializes decoding into the scratch snapshot; stats frames
	// normally arrive on one Receive goroutine, but a reconnect can
	// briefly overlap the old drain goroutine with the new one.
	mu   sync.Mutex
	snap obs.HistogramSnapshot

	p99     atomic.Int64 // ns, from the last good digest
	count   atomic.Int64 // server-side sample count
	lastAt  atomic.Int64 // unix nanos of the last good digest
	digests atomic.Int64 // digests decoded

	// breached is the client's own verdict (p99 > threshold);
	// serverBreached is the server's, forwarded in the digest flags
	// byte. Kept separate so link stats can tell them apart.
	breached       atomic.Bool
	serverBreached atomic.Bool
}

func newRemoteSLO(name string, budget time.Duration, beat time.Duration, rec *obs.Recorder) *remoteSLO {
	if beat <= 0 {
		beat = DefaultBeat
	}
	r := &remoteSLO{name: name, staleAfter: remoteStaleFactor * beat, rec: rec}
	if budget > 0 {
		// Same early-warning threshold the local degrade gate uses:
		// breach at 80% of the budget, before the contract is violated.
		r.threshold = int64(budget * 4 / 5)
	}
	return r
}

// ingest decodes one piggybacked digest and re-evaluates the breach
// state. Corrupt digests are dropped; the previous observation stands
// until it ages out.
func (r *remoteSLO) ingest(payload []byte) {
	if r == nil {
		return
	}
	r.mu.Lock()
	flags, err := obs.DecodeDigest(payload, &r.snap)
	if err != nil {
		r.mu.Unlock()
		return
	}
	p99 := int64(r.snap.Quantile(0.99))
	count := r.snap.Count
	r.mu.Unlock()

	r.digests.Add(1)
	r.lastAt.Store(time.Now().UnixNano())
	r.p99.Store(p99)
	r.count.Store(count)
	r.serverBreached.Store(flags&obs.DigestFlagBreached != 0)

	if r.threshold <= 0 {
		return
	}
	b := count > 0 && p99 > r.threshold
	if prev := r.breached.Swap(b); b != prev {
		if b {
			r.rec.Record(obs.EvRemoteBreach, r.name, p99, obs.SpanContext{})
			r.rec.Trigger("remote-breach")
		} else {
			r.rec.Record(obs.EvRemoteRecovered, r.name, p99, obs.SpanContext{})
		}
	}
}

// probe is the gate's SLO breach probe, sampled from Admit's hot
// path: allocation-free, three atomic loads. A stale observation
// reads as healthy — without fresh evidence the gate falls back to
// plain backpressure behavior instead of shedding on history.
//
//soleil:noheap
func (r *remoteSLO) probe() bool {
	if r.threshold <= 0 || !r.breached.Load() {
		return false
	}
	return time.Since(time.Unix(0, r.lastAt.Load())) <= r.staleAfter
}
