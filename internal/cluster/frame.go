package cluster

import (
	"encoding/json"
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"soleil/internal/dist"
)

// Frame types of the cluster session protocol, carried as the first
// byte of every dist frame. A connection opens with one hello (the
// dialing node names itself and the link it is carrying), then
// alternates data and heartbeat frames in both directions.
const (
	frameHello = 'H'
	frameData  = 'D'
	frameBeat  = 'B'
	// frameStats is a heartbeat that carries an obs latency digest:
	// the server side of a link piggybacks its component's histogram
	// (and breach state) onto the beat cadence, so the client can
	// evaluate a cross-node SLO without scraping anything.
	frameStats = 'S'
)

// DefaultBeat is the heartbeat interval of a session; a session that
// hears nothing from its peer for staleFactor beats closes itself so
// a silently dead peer cannot wedge a link forever.
const (
	DefaultBeat = 250 * time.Millisecond
	staleFactor = 8
)

// hello is the handshake a dialing node sends first on a link
// connection.
type hello struct {
	Node string `json:"node"`
	Link string `json:"link"`
}

func sendHello(tr dist.Transport, h hello) error {
	body, err := json.Marshal(h)
	if err != nil {
		return fmt.Errorf("cluster: encode hello: %w", err)
	}
	return tr.Send(append([]byte{frameHello}, body...))
}

func readHello(tr dist.Transport) (hello, error) {
	frame, err := tr.Receive()
	if err != nil {
		return hello{}, err
	}
	if len(frame) == 0 || frame[0] != frameHello {
		return hello{}, fmt.Errorf("cluster: expected hello, got frame type %q", frameByte(frame))
	}
	var h hello
	if err := json.Unmarshal(frame[1:], &h); err != nil {
		return hello{}, fmt.Errorf("cluster: decode hello: %w", err)
	}
	if h.Node == "" || h.Link == "" {
		return hello{}, fmt.Errorf("cluster: hello missing node or link")
	}
	return h, nil
}

func frameByte(frame []byte) byte {
	if len(frame) == 0 {
		return 0
	}
	return frame[0]
}

// sessionHooks customizes a session's heartbeat plane. All hooks are
// optional; the zero value is a plain beat/stale session.
type sessionHooks struct {
	// stats, when set, is polled once per beat tick; a non-empty
	// payload is sent as a frameStats heartbeat in place of the plain
	// beat. The returned slice is only read until the send returns, so
	// providers may reuse a buffer across calls.
	stats func() []byte
	// onStats receives the payload of every inbound frameStats frame.
	// It runs on the Receive goroutine; keep it quick.
	onStats func(payload []byte)
	// onStale fires once, just before the session closes itself
	// because the peer went silent for staleFactor beats.
	onStale func()
}

// session wraps a transport with the framed cluster protocol: Send
// prefixes data frames, Receive strips inbound heartbeats (handing
// stats-bearing ones to the hooks), and a background beater keeps the
// connection warm in both directions and closes it when the peer has
// gone stale. A session is itself a dist.Transport, so an Importer
// pumps it unchanged.
type session struct {
	tr     dist.Transport
	beat   time.Duration
	hooks  sessionHooks
	lastIn atomic.Int64 // unix nanos of the last inbound frame

	once sync.Once
	stop chan struct{}
}

var _ dist.Transport = (*session)(nil)

func newSession(tr dist.Transport, beat time.Duration, hooks sessionHooks) *session {
	if beat <= 0 {
		beat = DefaultBeat
	}
	s := &session{tr: tr, beat: beat, hooks: hooks, stop: make(chan struct{})}
	s.lastIn.Store(time.Now().UnixNano())
	go s.beater()
	return s
}

// beater emits one heartbeat per interval and enforces staleness: a
// peer that has sent nothing (neither data nor beats) for staleFactor
// intervals is presumed dead and the session closes, unblocking the
// local reader so the owner can reconnect. When a stats provider is
// installed its digest rides the beat frame, so cross-node SLO
// telemetry costs no extra connections and no extra wakeups.
func (s *session) beater() {
	ticker := time.NewTicker(s.beat)
	defer ticker.Stop()
	var frame []byte // reused across ticks; beats stay allocation-free
	for {
		select {
		case <-s.stop:
			return
		case <-ticker.C:
			if time.Since(time.Unix(0, s.lastIn.Load())) > time.Duration(staleFactor)*s.beat {
				if s.hooks.onStale != nil {
					s.hooks.onStale()
				}
				_ = s.Close()
				return
			}
			frame = append(frame[:0], frameBeat)
			if s.hooks.stats != nil {
				if p := s.hooks.stats(); len(p) > 0 {
					frame = append(frame[:0], frameStats)
					frame = append(frame, p...)
				}
			}
			if err := s.tr.Send(frame); err != nil {
				_ = s.Close()
				return
			}
		}
	}
}

// Send transmits one data payload.
func (s *session) Send(payload []byte) error {
	return s.tr.Send(append([]byte{frameData}, payload...))
}

// Receive blocks until the next data payload, absorbing heartbeats.
func (s *session) Receive() ([]byte, error) {
	for {
		frame, err := s.tr.Receive()
		if err != nil {
			return nil, err
		}
		s.lastIn.Store(time.Now().UnixNano())
		switch frameByte(frame) {
		case frameBeat:
			continue
		case frameStats:
			if s.hooks.onStats != nil {
				s.hooks.onStats(frame[1:])
			}
			continue
		case frameData:
			return frame[1:], nil
		default:
			return nil, fmt.Errorf("cluster: unexpected frame type %q", frameByte(frame))
		}
	}
}

// Close shuts the session and its transport down.
func (s *session) Close() error {
	var err error
	s.once.Do(func() {
		close(s.stop)
		err = s.tr.Close()
	})
	return err
}
