package cluster

import (
	"testing"
	"time"

	"soleil/internal/model"
	"soleil/internal/obs"
)

func digestOf(t *testing.T, d time.Duration, n int, flags byte) []byte {
	t.Helper()
	var h obs.Histogram
	for i := 0; i < n; i++ {
		h.Observe(d)
	}
	snap := h.Snapshot()
	return obs.AppendDigest(nil, &snap, flags)
}

func TestRemoteSLOIngestAndProbe(t *testing.T) {
	rec := obs.NewRecorder("client", 64)
	defer rec.Close()
	// budget 10ms -> threshold 8ms; staleAfter = 16 * 10ms.
	r := newRemoteSLO("link L", 10*time.Millisecond, 10*time.Millisecond, rec)

	// A fast server: p99 ~1ms, no breach.
	r.ingest(digestOf(t, time.Millisecond, 100, 0))
	if r.breached.Load() || r.probe() {
		t.Fatal("1ms p99 against an 8ms threshold must not breach")
	}
	if got := r.digests.Load(); got != 1 {
		t.Fatalf("digests = %d, want 1", got)
	}

	// A slow server: p99 ~20ms crosses the threshold.
	r.ingest(digestOf(t, 20*time.Millisecond, 100, obs.DigestFlagBreached))
	if !r.breached.Load() || !r.probe() {
		t.Fatalf("20ms p99 must breach (p99=%v)", time.Duration(r.p99.Load()))
	}
	if !r.serverBreached.Load() {
		t.Fatal("server-side verdict in the flags byte was dropped")
	}

	// Corrupt payloads are dropped without disturbing the state.
	r.ingest([]byte{0xFF, 0x01, 0x02})
	if got := r.digests.Load(); got != 2 {
		t.Fatalf("corrupt digest counted: digests = %d, want 2", got)
	}
	if !r.breached.Load() {
		t.Fatal("corrupt digest cleared the breach state")
	}

	// A stale observation reads as healthy: the probe must not shed
	// on history after the link has gone quiet.
	r.lastAt.Store(time.Now().Add(-time.Second).UnixNano())
	if r.probe() {
		t.Fatal("stale digest must read permissive")
	}

	// Recovery transitions back.
	r.lastAt.Store(time.Now().UnixNano())
	r.ingest(digestOf(t, time.Millisecond, 1000, 0))
	if r.breached.Load() || r.probe() {
		t.Fatal("recovered digest must clear the breach")
	}

	// Both transitions landed in the flight recorder.
	var sawBreach, sawRecover bool
	for _, ev := range rec.Events() {
		switch ev.Kind {
		case obs.EvRemoteBreach:
			sawBreach = true
		case obs.EvRemoteRecovered:
			sawRecover = true
		}
	}
	if !sawBreach || !sawRecover {
		t.Fatalf("recorder missed transitions: breach=%v recover=%v", sawBreach, sawRecover)
	}
}

func TestRemoteSLONoContract(t *testing.T) {
	r := newRemoteSLO("link L", 0, 10*time.Millisecond, nil)
	r.ingest(digestOf(t, time.Hour, 10, 0))
	if r.probe() {
		t.Fatal("a link without a latency budget never breaches")
	}
	if r.p99.Load() == 0 {
		t.Fatal("digest telemetry must still flow for link stats")
	}
}

// TestCrossNodeBreachPropagation is the tentpole's end-to-end check:
// a degrade contract on the alpha->beta link, a slow Worker on beta,
// and the breach must appear on *alpha* — carried by heartbeat
// digests, not scraped — flipping the export gate and landing in the
// flight recorder.
func TestCrossNodeBreachPropagation(t *testing.T) {
	budget := 2 * time.Millisecond
	c := newTestCluster(t, &model.Contract{
		LatencyBudget: budget,
		MaxRate:       200,
		Burst:         10,
		Policy:        model.Degrade,
	})
	defer c.closeAll()

	// The worker overshoots the budget on every message: p99 >> 80%
	// of 2ms.
	c.worker.delay.Store(int64(4 * time.Millisecond))

	alpha := c.start(t, "alpha", false)
	c.start(t, "beta", true)
	c.start(t, "gamma", false)

	linkName := "link Sensor.out->Worker.in"
	stats, ok := alpha.Registry().Link(linkName)
	if !ok {
		t.Fatalf("alpha registry has no %q; links: %v", linkName, alpha.Registry().LinkNames())
	}
	waitFor(t, "digests to reach alpha", 10*time.Second, func() bool {
		return stats().DigestsReceived > 0
	})
	waitFor(t, "remote breach on alpha", 10*time.Second, func() bool {
		return stats().RemoteBreached
	})
	if p99 := stats().RemoteP99; p99 < 4*budget/5 {
		t.Fatalf("propagated p99 = %v, want >= %v", p99, 4*budget/5)
	}

	// The export gate turns the propagated breach into local shedding.
	gate, ok := alpha.Registry().Gate(linkName)
	if !ok {
		t.Fatalf("alpha registry has no gate %q", linkName)
	}
	waitFor(t, "gate to observe the breach", 10*time.Second, func() bool {
		return gate().Breached
	})

	// The breach transition is on alpha's flight recorder — the node
	// that never ran the slow code.
	waitFor(t, "EvRemoteBreach on alpha's recorder", 10*time.Second, func() bool {
		for _, ev := range alpha.FlightRecorder().Events() {
			if ev.Kind == obs.EvRemoteBreach && ev.Node == "alpha" {
				return true
			}
		}
		return false
	})

	// The import side counted what it sent.
	beta := c.agents["beta"]
	bstats, ok := beta.Registry().Link(linkName)
	if !ok {
		t.Fatalf("beta registry has no %q", linkName)
	}
	if st := bstats(); st.Dir != "import" || st.DigestsSent == 0 {
		t.Fatalf("beta import stats = %+v", st)
	}
}
