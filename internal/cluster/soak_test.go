package cluster

import (
	"runtime"
	"testing"
	"time"
)

// TestSoakClusterReconvergence is the cluster acceptance scenario: a
// three-node pipeline under continuous load, the middle node killed
// and restarted mid-run (on a new port, as a rescheduled node would
// be), plus a worker that panics every Nth message so node-level
// supervision restarts it in place. The cluster must reconverge —
// traffic flowing end to end again, export links reconnected — and
// tear down without leaking a single goroutine.
func TestSoakClusterReconvergence(t *testing.T) {
	baseline := runtime.NumGoroutine()

	c := newTestCluster(t)
	c.worker.panicEvery = 17
	defer c.closeAll()

	// On failure, archive the merged cross-node flight-recorder
	// timeline: CI uploads flightrecorder-*.json as a workflow
	// artifact, so a flaky soak leaves its last 4096 events per node
	// behind for post-mortem.
	t.Cleanup(func() {
		if t.Failed() {
			dumpTimeline(t, "reconvergence-failure", c.mergedTimeline())
		}
	})

	alpha := c.start(t, "alpha", false)
	beta := c.start(t, "beta", false)
	c.start(t, "gamma", false)

	// Phase 1: converge under load, with the worker periodically
	// panicking and being restarted by beta's supervisor.
	waitFor(t, "initial convergence", 15*time.Second, func() bool { return c.sink.got.Load() >= 60 })
	if c.worker.inits.Load() < 2 {
		t.Fatalf("worker inits = %d: supervision never restarted the panicking worker", c.worker.inits.Load())
	}

	// Phase 2: kill the middle node mid-run. Producers keep running
	// and shed load via backpressure; nothing may crash.
	beta.Close()
	c.mu.Lock()
	delete(c.agents, "beta")
	c.mu.Unlock()
	killedAt := c.sink.got.Load()
	time.Sleep(150 * time.Millisecond)

	// Phase 3: restart beta. It binds a fresh port; the resolver
	// hands the new address to alpha's reconnecting link writer.
	c.start(t, "beta", false)
	waitFor(t, "reconvergence after node restart", 20*time.Second,
		func() bool { return c.sink.got.Load() >= killedAt+60 })
	if alpha.Reconnects() == 0 {
		t.Fatal("alpha's export link never reconnected")
	}

	// Phase 4: clean teardown, zero goroutine leaks.
	c.closeAll()
	deadline := time.After(10 * time.Second)
	for runtime.NumGoroutine() > baseline {
		select {
		case <-deadline:
			buf := make([]byte, 1<<16)
			t.Fatalf("goroutines leaked: %d > %d\n%s",
				runtime.NumGoroutine(), baseline, buf[:runtime.Stack(buf, true)])
		default:
			time.Sleep(5 * time.Millisecond)
		}
	}
	t.Logf("soak: delivered=%d workerInits=%d reconnects=%d",
		c.sink.got.Load(), c.worker.inits.Load(), alpha.Reconnects())
}
