// Package cluster is the deployment plane: it takes one architecture
// plus one deployment descriptor and turns them into N cooperating
// node runtimes with zero hand-written transport wiring. The planner
// partitions the component graph along the descriptor's node
// assignments, rewriting every cross-node binding into a dist
// export/import pair with the binding's own protocol and buffer
// semantics; node agents then serve their partitions, dialing peers
// with backoff, heartbeating, and re-importing bindings under fault
// supervision; a coordinator aggregates the nodes' observability
// surfaces. The paper defers distribution to future work (Sect. 7) —
// this package is that step taken in the declarative spirit of the
// ADL: the topology lives in documents, not in code.
package cluster

import (
	"fmt"

	"soleil/internal/model"
	"soleil/internal/validate"
)

// Link is one cross-node binding the planner rewrote into a dist
// export/import pair. The client node exports the client interface
// onto a queued transport port; the server node imports inbound
// envelopes into the server component's dataplane. ID is the
// rendezvous token of the link's connections (carried in the session
// handshake).
type Link struct {
	ID         string
	ClientNode string
	ServerNode string
	Client     model.Endpoint
	Server     model.Endpoint
	Protocol   model.Protocol
	// BufferSize is the binding's declared buffer capacity; the
	// outbound link queue preserves it (a full queue refuses the
	// message, exactly like a full in-process RTBuffer).
	BufferSize int
	// Contract is the binding's SLO contract, carried across the
	// rewrite so the client node can gate admission before the link
	// queue. Cross-node gates shed and rate-limit only — the server's
	// latency histogram is not locally visible, so the SLO breach
	// probe stays unwired.
	Contract *model.Contract
}

func (l *Link) String() string {
	return fmt.Sprintf("%s@%s -> %s@%s", l.Client, l.ClientNode, l.Server, l.ServerNode)
}

// NodePlan is one node's share of the architecture: a self-contained
// partition architecture (deployable by assembly as-is) plus the
// links it must export and import.
type NodePlan struct {
	Name        string
	Addr        string
	MetricsAddr string
	// Arch is the partition: the node's primitives, every container
	// with a member on this node, the intra-node bindings, named
	// "<architecture>@<node>".
	Arch *model.Architecture
	// Primitives lists the functional primitives of the partition.
	Primitives []string
	// Exports are the cross-node bindings whose client side lives
	// here; Imports those whose server side does.
	Exports []*Link
	Imports []*Link
}

// Plan is a complete cluster deployment plan.
type Plan struct {
	ArchName string
	// Assignment maps every functional primitive to its node.
	Assignment map[string]string
	// Links are the rewritten cross-node bindings.
	Links []*Link
	nodes map[string]*NodePlan
	order []string
}

// Node returns one node's plan.
func (p *Plan) Node(name string) (*NodePlan, bool) {
	np, ok := p.nodes[name]
	return np, ok
}

// Nodes returns the node plans in descriptor order.
func (p *Plan) Nodes() []*NodePlan {
	out := make([]*NodePlan, 0, len(p.order))
	for _, n := range p.order {
		out = append(out, p.nodes[n])
	}
	return out
}

// Compute partitions the architecture along the deployment's node
// assignments. It first runs the cross-node conformance rules
// (RT14/RT15) and refuses plans that violate them; each produced
// partition then passes the ordinary architecture validation inside
// assembly.Deploy, because cross-node bindings have been lifted out
// of it.
func Compute(a *model.Architecture, d *model.Deployment) (*Plan, error) {
	report, err := validate.ValidateDeployment(a, d)
	if err != nil {
		return nil, fmt.Errorf("cluster: %w", err)
	}
	if !report.OK() {
		return nil, fmt.Errorf("cluster: deployment violates cross-node rules: %v", report.Errors()[0])
	}
	assign, err := d.Resolve(a)
	if err != nil {
		return nil, fmt.Errorf("cluster: %w", err)
	}

	p := &Plan{
		ArchName:   a.Name(),
		Assignment: assign,
		nodes:      make(map[string]*NodePlan),
	}
	for _, n := range d.Nodes() {
		p.nodes[n.Name] = &NodePlan{Name: n.Name, Addr: n.Addr, MetricsAddr: n.MetricsAddr}
		p.order = append(p.order, n.Name)
	}

	// Rewrite cross-node bindings into links.
	for _, b := range a.Bindings() {
		cn, sn := assign[b.Client.Component], assign[b.Server.Component]
		if cn == sn {
			continue
		}
		l := &Link{
			ID:         b.Client.String() + "->" + b.Server.String(),
			ClientNode: cn,
			ServerNode: sn,
			Client:     b.Client,
			Server:     b.Server,
			Protocol:   b.Protocol,
			BufferSize: b.BufferSize,
		}
		if b.Contract != nil {
			c := *b.Contract
			l.Contract = &c
		}
		p.Links = append(p.Links, l)
		p.nodes[cn].Exports = append(p.nodes[cn].Exports, l)
		p.nodes[sn].Imports = append(p.nodes[sn].Imports, l)
	}

	// Build each node's partition.
	for _, np := range p.nodes {
		if err := buildPartition(a, assign, np); err != nil {
			return nil, err
		}
	}
	return p, nil
}

// buildPartition clones the slice of a that lives on np's node: the
// assigned primitives, every container (composite, ThreadDomain,
// MemoryArea) with at least one member primitive on the node, the
// membership edges among kept components, and the intra-node
// bindings. RT14 guarantees no non-functional container is torn
// between nodes.
func buildPartition(a *model.Architecture, assign map[string]string, np *NodePlan) error {
	keep := map[string]bool{}
	for _, c := range a.Components() {
		switch c.Kind() {
		case model.Active, model.Passive:
			keep[c.Name()] = assign[c.Name()] == np.Name
		default:
			for _, pmt := range primitivesUnder(c) {
				if assign[pmt.Name()] == np.Name {
					keep[c.Name()] = true
					break
				}
			}
		}
	}

	part := model.NewArchitecture(a.Name() + "@" + np.Name)
	for _, c := range a.Components() {
		if !keep[c.Name()] {
			continue
		}
		var clone *model.Component
		var err error
		switch c.Kind() {
		case model.Active:
			clone, err = part.NewActive(c.Name(), *c.Activation())
		case model.Passive:
			clone, err = part.NewPassive(c.Name())
		case model.Composite:
			clone, err = part.NewComposite(c.Name())
		case model.ThreadDomain:
			clone, err = part.NewThreadDomain(c.Name(), *c.Domain())
		case model.MemoryArea:
			clone, err = part.NewMemoryArea(c.Name(), *c.Area())
		}
		if err != nil {
			return fmt.Errorf("cluster: partition %s: %w", part.Name(), err)
		}
		for _, itf := range c.Interfaces() {
			if err := clone.AddInterface(itf); err != nil {
				return fmt.Errorf("cluster: partition %s: %w", part.Name(), err)
			}
		}
		if c.Kind().Functional() && c.Content() != "" {
			if err := clone.SetContent(c.Content()); err != nil {
				return fmt.Errorf("cluster: partition %s: %w", part.Name(), err)
			}
		}
		if c.Kind() == model.Active || c.Kind() == model.Passive {
			np.Primitives = append(np.Primitives, c.Name())
		}
	}

	// Membership edges, in the original creation order.
	for _, c := range a.Components() {
		if !keep[c.Name()] {
			continue
		}
		parent, _ := part.Component(c.Name())
		for _, sub := range c.Subs() {
			if !keep[sub.Name()] {
				continue
			}
			child, _ := part.Component(sub.Name())
			if err := part.AddChild(parent, child); err != nil {
				return fmt.Errorf("cluster: partition %s: %w", part.Name(), err)
			}
		}
	}

	// Intra-node bindings keep their full descriptor.
	for _, b := range a.Bindings() {
		if assign[b.Client.Component] != np.Name || assign[b.Server.Component] != np.Name {
			continue
		}
		if _, err := part.Bind(*b); err != nil {
			return fmt.Errorf("cluster: partition %s: %w", part.Name(), err)
		}
	}

	np.Arch = part
	return nil
}

// primitivesUnder collects the functional primitives reachable from c
// through membership edges.
func primitivesUnder(c *model.Component) []*model.Component {
	var out []*model.Component
	seen := map[*model.Component]bool{}
	var walk func(n *model.Component)
	walk = func(n *model.Component) {
		if seen[n] {
			return
		}
		seen[n] = true
		if n.Kind() == model.Active || n.Kind() == model.Passive {
			out = append(out, n)
		}
		for _, s := range n.Subs() {
			walk(s)
		}
	}
	walk(c)
	return out
}
