package cluster

import (
	"strings"
	"testing"
	"time"

	"soleil/internal/model"
	"soleil/internal/validate"
)

// pipelineArch is the canonical three-stage pipeline the cluster
// tests deploy: Sensor (periodic, inside the Front composite) feeds
// Worker feeds Sink, each stage in its own immortal area + RT domain
// so the stages can live on different nodes. Worker also calls a
// co-located passive Cache synchronously — an intra-node binding the
// planner must keep intact.
// An optional contract is applied to the Sensor->Worker binding —
// the cross-node SLO the breach-propagation tests exercise.
func pipelineArch(t *testing.T, proto model.Protocol, contract ...*model.Contract) *model.Architecture {
	t.Helper()
	a := model.NewArchitecture("pipeline")

	front, err := a.NewComposite("front")
	if err != nil {
		t.Fatal(err)
	}
	sensor, err := a.NewActive("Sensor", model.Activation{Kind: model.PeriodicActivation, Period: time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	must(t, sensor.AddInterface(model.Interface{Name: "out", Role: model.ClientRole, Signature: "IPut"}))
	must(t, sensor.SetContent("SensorImpl"))

	worker, err := a.NewActive("Worker", model.Activation{Kind: model.SporadicActivation})
	if err != nil {
		t.Fatal(err)
	}
	must(t, worker.AddInterface(model.Interface{Name: "in", Role: model.ServerRole, Signature: "IPut"}))
	must(t, worker.AddInterface(model.Interface{Name: "out", Role: model.ClientRole, Signature: "IPut"}))
	must(t, worker.AddInterface(model.Interface{Name: "cache", Role: model.ClientRole, Signature: "ICache"}))
	must(t, worker.SetContent("WorkerImpl"))

	cache, err := a.NewPassive("Cache")
	if err != nil {
		t.Fatal(err)
	}
	must(t, cache.AddInterface(model.Interface{Name: "get", Role: model.ServerRole, Signature: "ICache"}))
	must(t, cache.SetContent("CacheImpl"))

	sink, err := a.NewActive("Sink", model.Activation{Kind: model.SporadicActivation})
	if err != nil {
		t.Fatal(err)
	}
	must(t, sink.AddInterface(model.Interface{Name: "in", Role: model.ServerRole, Signature: "IPut"}))
	must(t, sink.SetContent("SinkImpl"))

	for _, stage := range []struct {
		suffix  string
		members []*model.Component
	}{
		{"alpha", []*model.Component{sensor}},
		{"beta", []*model.Component{worker, cache}},
		{"gamma", []*model.Component{sink}},
	} {
		imm, err := a.NewMemoryArea("imm_"+stage.suffix, model.AreaDesc{Kind: model.ImmortalMemory})
		if err != nil {
			t.Fatal(err)
		}
		td, err := a.NewThreadDomain("td_"+stage.suffix, model.DomainDesc{Kind: model.RealtimeThread, Priority: 20})
		if err != nil {
			t.Fatal(err)
		}
		must(t, a.AddChild(imm, td))
		for _, m := range stage.members {
			if m.Kind() == model.Active {
				must(t, a.AddChild(td, m))
			} else {
				must(t, a.AddChild(imm, m))
			}
		}
	}
	must(t, a.AddChild(front, sensor))

	bind := func(cComp, cItf, sComp, sItf string, p model.Protocol, pattern string, buf int, c *model.Contract) {
		b := model.Binding{
			Client:   model.Endpoint{Component: cComp, Interface: cItf},
			Server:   model.Endpoint{Component: sComp, Interface: sItf},
			Protocol: p,
			Pattern:  pattern,
			Contract: c,
		}
		if p == model.Asynchronous {
			b.BufferSize = buf
		}
		if _, err := a.Bind(b); err != nil {
			t.Fatal(err)
		}
	}
	var frontContract *model.Contract
	if len(contract) > 0 {
		frontContract = contract[0]
	}
	bind("Sensor", "out", "Worker", "in", proto, "deep-copy", 16, frontContract)
	bind("Worker", "out", "Sink", "in", proto, "deep-copy", 32, nil)
	bind("Worker", "cache", "Cache", "get", model.Synchronous, "", 0, nil)

	if rep := validate.Validate(a); !rep.OK() {
		t.Fatalf("pipeline arch must be conformant on its own: %v", rep.Errors())
	}
	return a
}

func pipelineDeployment(t *testing.T, a *model.Architecture) *model.Deployment {
	t.Helper()
	d := model.NewDeployment(a.Name())
	must(t, d.AddNode(&model.DeployNode{Name: "alpha", Addr: "127.0.0.1:7101", Assigned: []string{"front"}}))
	must(t, d.AddNode(&model.DeployNode{Name: "beta", Addr: "127.0.0.1:7102", Assigned: []string{"Worker", "Cache"}}))
	must(t, d.AddNode(&model.DeployNode{Name: "gamma", Addr: "127.0.0.1:7103", Assigned: []string{"Sink"}}))
	return d
}

func must(t *testing.T, err error) {
	t.Helper()
	if err != nil {
		t.Fatal(err)
	}
}

func TestComputePartitionsPipeline(t *testing.T) {
	a := pipelineArch(t, model.Asynchronous)
	d := pipelineDeployment(t, a)
	p, err := Compute(a, d)
	if err != nil {
		t.Fatal(err)
	}

	nodes := p.Nodes()
	if len(nodes) != 3 || nodes[0].Name != "alpha" || nodes[1].Name != "beta" || nodes[2].Name != "gamma" {
		t.Fatalf("node plans out of order: %v", nodes)
	}

	alpha, _ := p.Node("alpha")
	if alpha.Arch.Name() != "pipeline@alpha" {
		t.Fatalf("partition name = %q", alpha.Arch.Name())
	}
	for _, want := range []string{"Sensor", "front", "td_alpha", "imm_alpha"} {
		if _, ok := alpha.Arch.Component(want); !ok {
			t.Fatalf("alpha partition missing %s", want)
		}
	}
	for _, reject := range []string{"Worker", "Cache", "Sink", "td_beta", "imm_gamma"} {
		if _, ok := alpha.Arch.Component(reject); ok {
			t.Fatalf("alpha partition leaked %s", reject)
		}
	}

	// Every partition must be deployable on its own.
	for _, np := range nodes {
		if rep := validate.Validate(np.Arch); !rep.OK() {
			t.Fatalf("partition %s not conformant: %v", np.Name, rep.Errors())
		}
	}

	// The intra-node Worker -> Cache binding survives on beta; the
	// cross-node ones are gone everywhere.
	beta, _ := p.Node("beta")
	bb := beta.Arch.Bindings()
	if len(bb) != 1 || bb[0].Client.String() != "Worker.cache" || bb[0].Protocol != model.Synchronous {
		t.Fatalf("beta bindings = %v", bb)
	}
	if n := len(alpha.Arch.Bindings()); n != 0 {
		t.Fatalf("alpha kept %d bindings, want 0", n)
	}

	// Two links, client/server sides and buffer semantics preserved.
	if len(p.Links) != 2 {
		t.Fatalf("links = %v", p.Links)
	}
	l0 := p.Links[0]
	if l0.ClientNode != "alpha" || l0.ServerNode != "beta" || l0.BufferSize != 16 || l0.Protocol != model.Asynchronous {
		t.Fatalf("first link wrong: %+v", l0)
	}
	if len(alpha.Exports) != 1 || len(alpha.Imports) != 0 ||
		len(beta.Exports) != 1 || len(beta.Imports) != 1 ||
		len(nodes[2].Exports) != 0 || len(nodes[2].Imports) != 1 {
		t.Fatal("links attached to the wrong node plans")
	}
	if beta.Exports[0].BufferSize != 32 {
		t.Fatalf("Worker->Sink buffer = %d, want 32", beta.Exports[0].BufferSize)
	}

	// Assignment resolved the composite inheritance.
	if p.Assignment["Sensor"] != "alpha" || p.Assignment["Cache"] != "beta" {
		t.Fatalf("assignment = %v", p.Assignment)
	}
}

func TestComputeRejectsSyncCrossNode(t *testing.T) {
	a := pipelineArch(t, model.Synchronous)
	d := pipelineDeployment(t, a)
	if _, err := Compute(a, d); err == nil || !strings.Contains(err.Error(), "RT15") {
		t.Fatalf("sync cross-node plan must fail with RT15, got %v", err)
	}
}

func TestComputeRejectsUnresolvable(t *testing.T) {
	a := pipelineArch(t, model.Asynchronous)
	d := model.NewDeployment(a.Name())
	must(t, d.AddNode(&model.DeployNode{Name: "solo", Addr: "127.0.0.1:7100", Assigned: []string{"front"}}))
	if _, err := Compute(a, d); err == nil {
		t.Fatal("plan with unassigned primitives must fail")
	}
}

func TestComputeSingleNodeHasNoLinks(t *testing.T) {
	a := pipelineArch(t, model.Asynchronous)
	d := model.NewDeployment(a.Name())
	must(t, d.AddNode(&model.DeployNode{Name: "solo", Addr: "127.0.0.1:7100", Assigned: []string{"front", "Worker", "Cache", "Sink"}}))
	p, err := Compute(a, d)
	if err != nil {
		t.Fatal(err)
	}
	if len(p.Links) != 0 {
		t.Fatalf("single-node plan grew links: %v", p.Links)
	}
	solo, _ := p.Node("solo")
	if got := len(solo.Arch.Bindings()); got != 3 {
		t.Fatalf("solo partition kept %d bindings, want all 3", got)
	}
	if rep := validate.Validate(solo.Arch); !rep.OK() {
		t.Fatalf("solo partition not conformant: %v", rep.Errors())
	}
}
