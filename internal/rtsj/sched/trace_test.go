package sched

import (
	"strings"
	"testing"
	"time"
)

func TestCostOverrunDetection(t *testing.T) {
	s := New()
	var overruns []OverrunInfo
	task, err := s.NewTask(TaskConfig{
		Name: "greedy", Priority: 20,
		Release: Release{Kind: Periodic, Period: 10 * ms, Cost: 2 * ms},
		Body: func(tc *TaskContext) {
			for {
				if err := tc.Consume(3 * ms); err != nil {
					return
				}
				if !tc.WaitForNextPeriod() {
					return
				}
			}
		},
		OnOverrun: func(oi OverrunInfo) { overruns = append(overruns, oi) },
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Run(35 * ms); err != nil {
		t.Fatal(err)
	}
	st := task.Stats()
	// Releases at 0,10,20,30; each consumes 3ms of its 2ms budget.
	if st.Overruns < 3 {
		t.Fatalf("overruns = %d", st.Overruns)
	}
	if int64(len(overruns)) != st.Overruns {
		t.Fatalf("handler saw %d, stats %d", len(overruns), st.Overruns)
	}
	oi := overruns[0]
	if oi.Task != "greedy" || oi.Budget != 2*ms || oi.Consumed <= oi.Budget {
		t.Fatalf("overrun info = %+v", oi)
	}
	// No misses: the 3ms job fits the 10ms implicit deadline.
	if st.Misses != 0 {
		t.Fatalf("misses = %d", st.Misses)
	}
}

func TestNoOverrunWithinBudget(t *testing.T) {
	s := New()
	task, err := s.NewTask(TaskConfig{
		Name: "frugal", Priority: 20,
		Release: Release{Kind: Periodic, Period: 10 * ms, Cost: 5 * ms},
		Body: func(tc *TaskContext) {
			for {
				if err := tc.Consume(2 * ms); err != nil {
					return
				}
				if !tc.WaitForNextPeriod() {
					return
				}
			}
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Run(35 * ms); err != nil {
		t.Fatal(err)
	}
	if got := task.Stats().Overruns; got != 0 {
		t.Fatalf("overruns = %d", got)
	}
}

func TestTraceRecordsScheduleDecisions(t *testing.T) {
	s := New()
	s.EnableTrace(0)
	var n1, n2 int64
	if _, err := s.NewTask(TaskConfig{
		Name: "hi", Priority: 30,
		Release: Release{Kind: Periodic, Period: 10 * ms},
		Body:    periodicBody(ms, &n1),
	}); err != nil {
		t.Fatal(err)
	}
	if _, err := s.NewTask(TaskConfig{
		Name: "lo", Priority: 20,
		Release: Release{Kind: Periodic, Period: 10 * ms, Deadline: ms},
		Body:    periodicBody(2*ms, &n2),
	}); err != nil {
		t.Fatal(err)
	}
	if err := s.Run(25 * ms); err != nil {
		t.Fatal(err)
	}
	trace := s.Trace()
	if len(trace) == 0 {
		t.Fatal("empty trace")
	}
	kinds := map[EventKind]int{}
	for _, e := range trace {
		kinds[e.Kind]++
	}
	for _, want := range []EventKind{EventRelease, EventDispatch, EventComplete, EventMiss} {
		if kinds[want] == 0 {
			t.Errorf("no %v events in trace", want)
		}
	}
	// Releases: 3 per task over 25ms.
	if kinds[EventRelease] != 6 {
		t.Errorf("release events = %d", kinds[EventRelease])
	}
	// The trace is chronological.
	for i := 1; i < len(trace); i++ {
		if trace[i].Time < trace[i-1].Time {
			t.Fatalf("trace out of order at %d: %v after %v", i, trace[i], trace[i-1])
		}
	}
	// Rendering mentions the tasks and kinds.
	var sb strings.Builder
	if err := s.WriteTrace(&sb); err != nil {
		t.Fatal(err)
	}
	for _, frag := range []string{"release", "dispatch", "complete", "miss", "hi", "lo"} {
		if !strings.Contains(sb.String(), frag) {
			t.Errorf("rendered trace missing %q", frag)
		}
	}
}

func TestTraceCapacity(t *testing.T) {
	s := New()
	s.EnableTrace(5)
	var n int64
	if _, err := s.NewTask(TaskConfig{
		Name: "p", Priority: 20,
		Release: Release{Kind: Periodic, Period: ms},
		Body:    periodicBody(0, &n),
	}); err != nil {
		t.Fatal(err)
	}
	if err := s.Run(50 * ms); err != nil {
		t.Fatal(err)
	}
	if got := len(s.Trace()); got != 5 {
		t.Fatalf("trace length = %d, want capped 5", got)
	}
}

// TestDeterministicSchedule: two identical schedulers produce
// identical traces — the determinism guarantee of the simulation.
func TestDeterministicSchedule(t *testing.T) {
	build := func() *Scheduler {
		s := New()
		s.EnableTrace(0)
		var n1, n2, n3 int64
		mustTask := func(cfg TaskConfig) {
			if _, err := s.NewTask(cfg); err != nil {
				t.Fatal(err)
			}
		}
		mustTask(TaskConfig{Name: "a", Priority: 30,
			Release: Release{Kind: Periodic, Period: 7 * ms}, Body: periodicBody(2*ms, &n1)})
		mustTask(TaskConfig{Name: "b", Priority: 25,
			Release: Release{Kind: Periodic, Period: 12 * ms}, Body: periodicBody(3*ms, &n2)})
		mustTask(TaskConfig{Name: "c", Priority: 20,
			Release: Release{Kind: Periodic, Period: 20 * ms}, Body: periodicBody(5*ms, &n3)})
		return s
	}
	s1, s2 := build(), build()
	if err := s1.Run(200 * ms); err != nil {
		t.Fatal(err)
	}
	if err := s2.Run(200 * ms); err != nil {
		t.Fatal(err)
	}
	t1, t2 := s1.Trace(), s2.Trace()
	if len(t1) != len(t2) {
		t.Fatalf("trace lengths differ: %d vs %d", len(t1), len(t2))
	}
	for i := range t1 {
		if t1[i] != t2[i] {
			t.Fatalf("traces diverge at %d: %v vs %v", i, t1[i], t2[i])
		}
	}
	_ = time.Millisecond
}
