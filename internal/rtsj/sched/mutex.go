package sched

import "fmt"

// Mutex is a scheduler-managed lock with the priority inheritance
// protocol: while a task is blocked on the lock, the owner's effective
// priority is raised to the blocked task's (transitively through
// chains of locks), bounding priority inversion.
//
// Mutexes are manipulated exclusively through TaskContext.Lock and
// TaskContext.Unlock from inside task bodies.
type Mutex struct {
	name    string
	owner   *Task
	waiters []*Task
}

// NewMutex creates a named mutex belonging to this scheduler.
func (s *Scheduler) NewMutex(name string) *Mutex {
	return &Mutex{name: name}
}

// Name returns the mutex name.
func (m *Mutex) Name() string { return m.name }

// lock handles a callLock syscall.
func (s *Scheduler) lock(c *call) {
	t, m := c.task, c.m
	if m.owner == nil {
		m.owner = t
		t.held[m] = true
		c.err <- nil
		return
	}
	if m.owner == t {
		c.err <- fmt.Errorf("sched: task %q locking mutex %q it already holds", t.name, m.name)
		return
	}
	m.waiters = append(m.waiters, t)
	t.blockedOn = m
	t.state = stateBlocked
	s.emit(EventBlock, t, "on "+m.name)
	s.inherit(t)
	s.running = nil
	c.err <- errWouldBlock
}

// unlock handles a callUnlock syscall; the caller keeps the CPU.
func (s *Scheduler) unlock(t *Task, m *Mutex) error {
	if m.owner != t {
		owner := "<nobody>"
		if m.owner != nil {
			owner = m.owner.name
		}
		return fmt.Errorf("sched: task %q unlocking mutex %q held by %s", t.name, m.name, owner)
	}
	delete(t.held, m)
	m.owner = nil
	s.recomputeEffective(t)
	if len(m.waiters) == 0 {
		return nil
	}
	// Wake the highest effective-priority waiter, FIFO within a level.
	best := 0
	for i := 1; i < len(m.waiters); i++ {
		if m.waiters[i].effPrio > m.waiters[best].effPrio {
			best = i
		}
	}
	w := m.waiters[best]
	m.waiters = append(m.waiters[:best], m.waiters[best+1:]...)
	m.owner = w
	w.held[m] = true
	w.blockedOn = nil
	s.emit(EventUnblock, w, "acquired "+m.name)
	s.makeReady(w)
	return nil
}

// inherit propagates t's effective priority through the chain of lock
// owners t is transitively blocked on.
func (s *Scheduler) inherit(t *Task) {
	p := t.effPrio
	for m := t.blockedOn; m != nil; {
		o := m.owner
		if o == nil || o.effPrio >= p {
			return
		}
		o.effPrio = p
		m = o.blockedOn
	}
}

// recomputeEffective resets t's effective priority to its base plus
// any inheritance still owed to waiters of locks it continues to hold.
func (s *Scheduler) recomputeEffective(t *Task) {
	eff := t.prio
	for m := range t.held {
		for _, w := range m.waiters {
			if w.effPrio > eff {
				eff = w.effPrio
			}
		}
	}
	t.effPrio = eff
}
