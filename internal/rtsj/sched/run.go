package sched

import (
	"fmt"

	"soleil/internal/rtsj/clock"
)

// Run executes the system until the virtual clock reaches the given
// horizon or every task has terminated. It returns after all task
// goroutines have exited. A scheduler can only run once.
func (s *Scheduler) Run(until clock.Duration) error {
	if s.ran {
		return fmt.Errorf("sched: scheduler already ran")
	}
	if until <= 0 {
		return fmt.Errorf("sched: run horizon must be positive, got %v", until)
	}
	s.ran = true
	horizon := clock.Time(until)

	for _, t := range s.tasks {
		switch t.release.Kind {
		case Periodic, Aperiodic:
			t.state = stateWaiting
			s.pushEvent(&event{
				time:    clock.Time(t.release.Start),
				kind:    evRelease,
				task:    t,
				nominal: clock.Time(t.release.Start),
			})
		case Sporadic:
			t.state = stateWaitingFire
		}
		s.wg.Add(1)
		go s.taskLoop(t)
	}

	var lastConsumer *Task
	for {
		if s.running != nil {
			s.handle(<-s.calls)
			continue
		}
		now := s.clk.Now()
		for ev := s.peekEvent(); ev != nil && ev.time <= now; ev = s.peekEvent() {
			s.fireEvent(s.popEvent())
		}
		next := s.pickReady()
		if next == nil {
			ev := s.peekEvent()
			if ev == nil || ev.time > horizon {
				break
			}
			s.idleTime += ev.time.Sub(now)
			if err := s.clk.AdvanceTo(ev.time); err != nil {
				return err
			}
			continue
		}
		if next.remaining > 0 {
			if lastConsumer != nil && lastConsumer != next && lastConsumer.remaining > 0 {
				s.preempted++
				s.emit(EventPreempt, lastConsumer, "by "+next.name)
			}
			lastConsumer = next
			sliceEnd := horizon
			if ev := s.peekEvent(); ev != nil && ev.time < sliceEnd {
				sliceEnd = ev.time
			}
			if sliceEnd <= now {
				// Time budget exhausted while work is pending.
				break
			}
			budgetEnd := now.Add(next.remaining)
			if budgetEnd <= sliceEnd {
				if err := s.clk.AdvanceTo(budgetEnd); err != nil {
					return err
				}
				s.chargeConsumption(next, next.remaining)
				next.remaining = 0
				s.dispatch(next)
			} else {
				slice := sliceEnd.Sub(now)
				if err := s.clk.AdvanceTo(sliceEnd); err != nil {
					return err
				}
				s.chargeConsumption(next, slice)
				next.remaining -= slice
			}
			continue
		}
		s.dispatch(next)
	}

	s.shutdown()
	s.wg.Wait()
	if s.clk.Now() < horizon {
		if err := s.clk.AdvanceTo(horizon); err != nil {
			return err
		}
	}
	return nil
}

// taskLoop is the goroutine wrapper around a task body.
func (s *Scheduler) taskLoop(t *Task) {
	defer s.wg.Done()
	msg := t.block() // first dispatch (first release)
	if !msg.stopped {
		t.tc = &TaskContext{t: t}
		t.body(t.tc)
	}
	t.submit(&call{kind: callExit})
}

// chargeConsumption accounts CPU time to a task and its current
// release, detecting cost overruns against the declared budget.
func (s *Scheduler) chargeConsumption(t *Task, d clock.Duration) {
	t.stats.Consumed += d
	t.relConsumed += d
	if budget := t.release.Cost; budget > 0 && !t.overrunFlagged && t.relConsumed > budget {
		t.overrunFlagged = true
		t.stats.Overruns++
		s.emit(EventOverrun, t, fmt.Sprintf("consumed %v of %v budget", t.relConsumed, budget))
		if t.onOverrun != nil {
			t.onOverrun(OverrunInfo{
				Task:     t.name,
				Release:  t.currentRelease,
				Budget:   budget,
				Consumed: t.relConsumed,
				Now:      s.clk.Now(),
			})
		}
	}
}

// dispatch hands the CPU to a ready task: it resumes the task's real
// code and records first-dispatch latency for a fresh release.
func (s *Scheduler) dispatch(t *Task) {
	if t.dispatchedRel < t.relSeq {
		lat := s.clk.Now().Sub(t.currentRelease)
		if lat > t.stats.MaxStartLatency {
			t.stats.MaxStartLatency = lat
		}
		t.dispatchedRel = t.relSeq
		s.emit(EventDispatch, t, "")
	}
	t.state = stateRunning
	s.running = t
	t.cont <- contMsg{}
}

// pickReady returns the ready task with the highest effective
// priority, FIFO within a priority level.
func (s *Scheduler) pickReady() *Task {
	var best *Task
	for _, t := range s.tasks {
		if t.state != stateReady {
			continue
		}
		if best == nil || t.effPrio > best.effPrio ||
			(t.effPrio == best.effPrio && t.enqueueSeq < best.enqueueSeq) {
			best = t
		}
	}
	return best
}

func (s *Scheduler) makeReady(t *Task) {
	t.state = stateReady
	t.enqueueSeq = s.enqueues
	s.enqueues++
}

// fireEvent applies a due event.
func (s *Scheduler) fireEvent(ev *event) {
	t := ev.task
	switch ev.kind {
	case evRelease:
		t.relSeq++
		t.currentRelease = ev.nominal
		t.stats.Releases++
		t.relConsumed = 0
		t.overrunFlagged = false
		s.emit(EventRelease, t, "")
		s.makeReady(t)
		if d := t.release.effectiveDeadline(); d > 0 {
			s.pushEvent(&event{
				time:       ev.nominal.Add(d),
				kind:       evDeadline,
				task:       t,
				rel:        t.relSeq,
				deadlineAt: ev.nominal.Add(d),
			})
		}
	case evWakeup:
		if t.state == stateSleeping {
			s.makeReady(t)
		}
	case evDeadline:
		if t.state == stateFinished {
			return
		}
		if t.completedSeq < ev.rel && t.relSeq >= ev.rel {
			t.stats.Misses++
			s.emit(EventMiss, t, fmt.Sprintf("deadline %v", ev.deadlineAt))
			if t.onMiss != nil {
				t.onMiss(MissInfo{
					Task:     t.name,
					Release:  t.currentRelease,
					Deadline: ev.deadlineAt,
					Now:      s.clk.Now(),
				})
			}
		}
	}
}

// complete records the completion of the task's current release.
func (s *Scheduler) complete(t *Task) {
	if t.relSeq <= t.completedSeq {
		return
	}
	resp := s.clk.Now().Sub(t.currentRelease)
	s.emit(EventComplete, t, fmt.Sprintf("response %v", resp))
	t.stats.Completions++
	t.stats.TotalResponse += resp
	if resp > t.stats.MaxResponse {
		t.stats.MaxResponse = resp
	}
	t.completedSeq = t.relSeq
}

// handle processes one syscall from the running task.
func (s *Scheduler) handle(c *call) {
	t := c.task
	now := s.clk.Now()
	switch c.kind {
	case callExit:
		s.complete(t)
		t.state = stateFinished
		s.finished++
		s.running = nil
	case callConsume:
		t.remaining = c.d
		s.makeReady(t)
		s.running = nil
	case callSleep:
		t.state = stateSleeping
		s.pushEvent(&event{time: now.Add(c.d), kind: evWakeup, task: t})
		s.running = nil
	case callYield:
		s.makeReady(t)
		s.running = nil
	case callWFNP:
		s.complete(t)
		nominal := clock.Time(t.release.Start) + clock.Time(t.relSeq)*clock.Time(t.release.Period)
		at := nominal
		if at < now {
			at = now
		}
		t.state = stateWaiting
		s.pushEvent(&event{time: at, kind: evRelease, task: t, nominal: nominal})
		s.running = nil
	case callWaitRelease:
		s.complete(t)
		if len(t.pendingFires) > 0 {
			eff := t.pendingFires[0]
			t.pendingFires = t.pendingFires[1:]
			at := eff
			if at < now {
				at = now
			}
			t.state = stateWaiting
			s.pushEvent(&event{time: at, kind: evRelease, task: t, nominal: eff})
		} else {
			t.state = stateWaitingFire
		}
		s.running = nil
	case callFire:
		s.fireArrival(c.target, now)
		c.err <- nil
	case callLock:
		s.lock(c)
	case callUnlock:
		c.err <- s.unlock(t, c.m)
	default:
		panic(fmt.Sprintf("sched: unknown syscall %d", c.kind))
	}
}

// fireArrival records a sporadic arrival at time now, deferring it per
// the task's minimum interarrival time.
func (s *Scheduler) fireArrival(t *Task, now clock.Time) {
	eff := now
	if t.anyScheduled {
		if min := t.lastScheduled.Add(t.release.MinInterarrival); min > eff {
			eff = min
		}
	}
	t.lastScheduled = eff
	t.anyScheduled = true
	if t.state == stateWaitingFire {
		t.state = stateWaiting
		s.pushEvent(&event{time: eff, kind: evRelease, task: t, nominal: eff})
	} else {
		t.pendingFires = append(t.pendingFires, eff)
	}
}

// shutdown wakes every unfinished task with a stop signal and services
// their unwinding syscalls until all goroutines have exited.
func (s *Scheduler) shutdown() {
	s.stopping = true
	for _, t := range s.tasks {
		if t.state != stateFinished {
			t.cont <- contMsg{stopped: true}
		}
	}
	for s.finished < len(s.tasks) {
		c := <-s.calls
		switch c.kind {
		case callExit:
			c.task.state = stateFinished
			s.finished++
		case callFire:
			c.err <- nil
		case callUnlock:
			c.err <- s.unlock(c.task, c.m)
		case callLock:
			c.err <- ErrStopped
		default:
			// Yielding calls during unwinding resolve immediately as
			// stopped.
			c.task.cont <- contMsg{stopped: true}
		}
	}
}
