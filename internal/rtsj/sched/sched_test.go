package sched

import (
	"sync/atomic"
	"testing"
	"testing/quick"
	"time"

	"soleil/internal/rtsj/clock"
)

const ms = time.Millisecond

func periodicBody(work clock.Duration, count *int64) func(*TaskContext) {
	return func(tc *TaskContext) {
		for {
			atomic.AddInt64(count, 1)
			if err := tc.Consume(work); err != nil {
				return
			}
			if !tc.WaitForNextPeriod() {
				return
			}
		}
	}
}

func TestNewTaskValidation(t *testing.T) {
	s := New()
	body := func(*TaskContext) {}
	cases := []struct {
		name string
		cfg  TaskConfig
	}{
		{"no name", TaskConfig{Priority: 20, Release: Release{Kind: Aperiodic}, Body: body}},
		{"bad priority", TaskConfig{Name: "t", Priority: 99, Release: Release{Kind: Aperiodic}, Body: body}},
		{"no body", TaskConfig{Name: "t", Priority: 20, Release: Release{Kind: Aperiodic}}},
		{"periodic no period", TaskConfig{Name: "t", Priority: 20, Release: Release{Kind: Periodic}, Body: body}},
		{"negative start", TaskConfig{Name: "t", Priority: 20, Release: Release{Kind: Aperiodic, Start: -1}, Body: body}},
		{"unknown kind", TaskConfig{Name: "t", Priority: 20, Release: Release{}, Body: body}},
	}
	for _, c := range cases {
		if _, err := s.NewTask(c.cfg); err == nil {
			t.Errorf("%s: accepted", c.name)
		}
	}
	if _, err := s.NewTask(TaskConfig{Name: "ok", Priority: 20, Release: Release{Kind: Aperiodic}, Body: body}); err != nil {
		t.Fatalf("valid task refused: %v", err)
	}
	if _, err := s.NewTask(TaskConfig{Name: "ok", Priority: 20, Release: Release{Kind: Aperiodic}, Body: body}); err == nil {
		t.Error("duplicate name accepted")
	}
}

func TestRunTwiceRefused(t *testing.T) {
	s := New()
	if err := s.Run(time.Millisecond); err != nil {
		t.Fatalf("first run: %v", err)
	}
	if err := s.Run(time.Millisecond); err == nil {
		t.Fatal("second run accepted")
	}
	if err := New().Run(0); err == nil {
		t.Fatal("zero horizon accepted")
	}
}

func TestPeriodicReleases(t *testing.T) {
	s := New()
	var n int64
	task, err := s.NewTask(TaskConfig{
		Name: "p", Priority: 20,
		Release: Release{Kind: Periodic, Period: 10 * ms},
		Body:    periodicBody(2*ms, &n),
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Run(99 * ms); err != nil {
		t.Fatal(err)
	}
	// Releases at 0,10,...,90.
	if n != 10 {
		t.Fatalf("iterations = %d, want 10", n)
	}
	st := task.Stats()
	if st.Releases != 10 || st.Completions != 10 || st.Misses != 0 {
		t.Fatalf("stats = %+v", st)
	}
	if st.Consumed != 20*ms {
		t.Fatalf("consumed = %v", st.Consumed)
	}
	if st.MaxResponse != 2*ms {
		t.Fatalf("max response = %v", st.MaxResponse)
	}
	if st.MeanResponse() != 2*ms {
		t.Fatalf("mean response = %v", st.MeanResponse())
	}
	if st.MaxStartLatency != 0 {
		t.Fatalf("start latency = %v", st.MaxStartLatency)
	}
}

func TestPeriodicStartOffset(t *testing.T) {
	s := New()
	var n int64
	_, err := s.NewTask(TaskConfig{
		Name: "p", Priority: 20,
		Release: Release{Kind: Periodic, Start: 5 * ms, Period: 10 * ms},
		Body:    periodicBody(ms, &n),
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Run(50 * ms); err != nil {
		t.Fatal(err)
	}
	// Releases at 5,15,25,35,45.
	if n != 5 {
		t.Fatalf("iterations = %d, want 5", n)
	}
}

func TestPreemption(t *testing.T) {
	s := New()
	var lowDone clock.Time
	low, err := s.NewTask(TaskConfig{
		Name: "low", Priority: 12,
		Release: Release{Kind: Aperiodic},
		Body: func(tc *TaskContext) {
			if err := tc.Consume(50 * ms); err != nil {
				return
			}
			lowDone = tc.Now()
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	var n int64
	high, err := s.NewTask(TaskConfig{
		Name: "high", Priority: 25,
		Release: Release{Kind: Periodic, Period: 10 * ms},
		Body:    periodicBody(ms, &n),
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Run(200 * ms); err != nil {
		t.Fatal(err)
	}
	if got := low.Stats().Consumed; got != 50*ms {
		t.Fatalf("low consumed = %v", got)
	}
	// low needs 50ms CPU; high steals 1ms per 10ms period: low
	// completes at 55ms or 56ms depending on the final interleaving.
	if lowDone < clock.Time(55*ms) || lowDone > clock.Time(57*ms) {
		t.Fatalf("low finished at %v", lowDone)
	}
	// high is never delayed: its response time stays at its own cost.
	if got := high.Stats().MaxResponse; got != ms {
		t.Fatalf("high max response = %v", got)
	}
	if s.Preemptions() == 0 {
		t.Fatal("no preemptions recorded")
	}
	if s.IdleTime() == 0 {
		t.Fatal("no idle time recorded over 200ms with 55ms of work")
	}
}

func TestSporadicFireAndMinInterarrival(t *testing.T) {
	s := New()
	var releases int64
	sp, err := s.NewTask(TaskConfig{
		Name: "sp", Priority: 15,
		Release: Release{Kind: Sporadic, MinInterarrival: 12 * ms},
		Body: func(tc *TaskContext) {
			for {
				atomic.AddInt64(&releases, 1)
				if err := tc.Consume(100 * time.Microsecond); err != nil {
					return
				}
				if !tc.WaitForRelease() {
					return
				}
			}
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	_, err = s.NewTask(TaskConfig{
		Name: "driver", Priority: 20,
		Release: Release{Kind: Periodic, Period: 5 * ms},
		Body: func(tc *TaskContext) {
			for {
				if err := tc.Fire(sp); err != nil {
					return
				}
				if !tc.WaitForNextPeriod() {
					return
				}
			}
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Run(50 * ms); err != nil {
		t.Fatal(err)
	}
	// Arrivals every 5ms are deferred to effective releases at
	// 0,12,24,36,48.
	if releases != 5 {
		t.Fatalf("sporadic releases = %d, want 5", releases)
	}
	if got := sp.Stats().Releases; got != 5 {
		t.Fatalf("stats releases = %d", got)
	}
}

func TestFireValidation(t *testing.T) {
	s := New()
	var per *Task
	per, err := s.NewTask(TaskConfig{
		Name: "p", Priority: 20,
		Release: Release{Kind: Periodic, Period: 10 * ms},
		Body: func(tc *TaskContext) {
			if err := tc.Fire(per); err == nil {
				t.Error("firing a periodic task accepted")
			}
			if err := tc.Fire(nil); err == nil {
				t.Error("firing nil accepted")
			}
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Run(5 * ms); err != nil {
		t.Fatal(err)
	}
}

func TestDeadlineMiss(t *testing.T) {
	s := New()
	var misses []MissInfo
	task, err := s.NewTask(TaskConfig{
		Name: "over", Priority: 20,
		Release: Release{Kind: Periodic, Period: 10 * ms, Deadline: 5 * ms},
		Body: func(tc *TaskContext) {
			for {
				if err := tc.Consume(7 * ms); err != nil {
					return
				}
				if !tc.WaitForNextPeriod() {
					return
				}
			}
		},
		OnMiss: func(mi MissInfo) { misses = append(misses, mi) },
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Run(35 * ms); err != nil {
		t.Fatal(err)
	}
	st := task.Stats()
	if st.Misses == 0 {
		t.Fatal("no deadline misses recorded for a 7ms job with 5ms deadline")
	}
	if int64(len(misses)) != st.Misses {
		t.Fatalf("handler saw %d misses, stats %d", len(misses), st.Misses)
	}
	if misses[0].Task != "over" || misses[0].Deadline != clock.Time(5*ms) {
		t.Fatalf("first miss = %+v", misses[0])
	}
}

func TestDeadlineMetNoMiss(t *testing.T) {
	s := New()
	task, err := s.NewTask(TaskConfig{
		Name: "ok", Priority: 20,
		Release: Release{Kind: Periodic, Period: 10 * ms, Deadline: 5 * ms},
		Body: func(tc *TaskContext) {
			for {
				if err := tc.Consume(2 * ms); err != nil {
					return
				}
				if !tc.WaitForNextPeriod() {
					return
				}
			}
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Run(55 * ms); err != nil {
		t.Fatal(err)
	}
	if got := task.Stats().Misses; got != 0 {
		t.Fatalf("misses = %d", got)
	}
}

func TestSleep(t *testing.T) {
	s := New()
	var woke clock.Time
	_, err := s.NewTask(TaskConfig{
		Name: "z", Priority: 20,
		Release: Release{Kind: Aperiodic, Start: ms},
		Body: func(tc *TaskContext) {
			if err := tc.Sleep(7 * ms); err != nil {
				return
			}
			woke = tc.Now()
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Run(20 * ms); err != nil {
		t.Fatal(err)
	}
	if woke != clock.Time(8*ms) {
		t.Fatalf("woke at %v, want 8ms", woke)
	}
}

func TestPriorityInheritance(t *testing.T) {
	s := New()
	m := s.NewMutex("m")
	_, err := s.NewTask(TaskConfig{
		Name: "L", Priority: 12,
		Release: Release{Kind: Aperiodic},
		Body: func(tc *TaskContext) {
			if err := tc.Lock(m); err != nil {
				return
			}
			if err := tc.Consume(10 * ms); err != nil {
				return
			}
			if err := tc.Unlock(m); err != nil {
				t.Errorf("L unlock: %v", err)
			}
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	_, err = s.NewTask(TaskConfig{
		Name: "M", Priority: 15,
		Release: Release{Kind: Aperiodic, Start: ms},
		Body: func(tc *TaskContext) {
			_ = tc.Consume(20 * ms)
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	high, err := s.NewTask(TaskConfig{
		Name: "H", Priority: 20,
		Release: Release{Kind: Aperiodic, Start: 2 * ms},
		Body: func(tc *TaskContext) {
			if err := tc.Lock(m); err != nil {
				return
			}
			if err := tc.Consume(ms); err != nil {
				return
			}
			if err := tc.Unlock(m); err != nil {
				t.Errorf("H unlock: %v", err)
			}
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Run(100 * ms); err != nil {
		t.Fatal(err)
	}
	// With priority inheritance H waits only for L's remaining
	// critical section (9ms) plus its own 1ms: response ~10ms. Without
	// it, M's 20ms would interpose (response ~30ms).
	if got := high.Stats().MaxResponse; got > 12*ms {
		t.Fatalf("H response %v suggests priority inversion (no inheritance)", got)
	}
	if got := high.Stats().MaxResponse; got < 9*ms {
		t.Fatalf("H response %v implausibly small", got)
	}
}

func TestMutexErrors(t *testing.T) {
	s := New()
	m := s.NewMutex("m")
	if m.Name() != "m" {
		t.Fatal("name")
	}
	_, err := s.NewTask(TaskConfig{
		Name: "t", Priority: 20,
		Release: Release{Kind: Aperiodic},
		Body: func(tc *TaskContext) {
			if err := tc.Unlock(m); err == nil {
				t.Error("unlock of unheld mutex accepted")
			}
			if err := tc.Lock(m); err != nil {
				t.Errorf("lock: %v", err)
			}
			if err := tc.Lock(m); err == nil {
				t.Error("recursive lock accepted")
			}
			if err := tc.Unlock(m); err != nil {
				t.Errorf("unlock: %v", err)
			}
			if err := tc.Lock(nil); err == nil {
				t.Error("nil lock accepted")
			}
			if err := tc.Unlock(nil); err == nil {
				t.Error("nil unlock accepted")
			}
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Run(10 * ms); err != nil {
		t.Fatal(err)
	}
}

func TestYieldRoundRobin(t *testing.T) {
	s := New()
	var order []string
	mk := func(name string) {
		_, err := s.NewTask(TaskConfig{
			Name: name, Priority: 20,
			Release: Release{Kind: Aperiodic},
			Body: func(tc *TaskContext) {
				for i := 0; i < 3; i++ {
					order = append(order, name)
					if err := tc.Yield(); err != nil {
						return
					}
				}
			},
		})
		if err != nil {
			t.Fatal(err)
		}
	}
	mk("a")
	mk("b")
	if err := s.Run(10 * ms); err != nil {
		t.Fatal(err)
	}
	want := []string{"a", "b", "a", "b", "a", "b"}
	if len(order) != len(want) {
		t.Fatalf("order = %v", order)
	}
	for i := range want {
		if order[i] != want[i] {
			t.Fatalf("order = %v, want %v", order, want)
		}
	}
}

func TestStartLatencyOfLowerPriorityTask(t *testing.T) {
	s := New()
	var n1, n2 int64
	_, err := s.NewTask(TaskConfig{
		Name: "high", Priority: 30,
		Release: Release{Kind: Periodic, Period: 10 * ms},
		Body:    periodicBody(ms, &n1),
	})
	if err != nil {
		t.Fatal(err)
	}
	low, err := s.NewTask(TaskConfig{
		Name: "low", Priority: 20,
		Release: Release{Kind: Periodic, Period: 10 * ms},
		Body:    periodicBody(ms, &n2),
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Run(95 * ms); err != nil {
		t.Fatal(err)
	}
	if got := low.Stats().MaxStartLatency; got != ms {
		t.Fatalf("low start latency = %v, want 1ms", got)
	}
	if got := low.Stats().MaxResponse; got != 2*ms {
		t.Fatalf("low response = %v, want 2ms", got)
	}
}

func TestStopWakesBlockedTasks(t *testing.T) {
	s := New()
	var stopped bool
	_, err := s.NewTask(TaskConfig{
		Name: "sp", Priority: 15,
		Release: Release{Kind: Sporadic},
		Body: func(tc *TaskContext) {
			// First release happens only if fired — it never is, so
			// the body only runs on shutdown... it does not run at all.
			stopped = true
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	done := make(chan error, 1)
	go func() { done <- s.Run(10 * ms) }()
	select {
	case err := <-done:
		if err != nil {
			t.Fatal(err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("Run did not terminate with an unfired sporadic task")
	}
	if stopped {
		t.Fatal("unfired sporadic body ran")
	}
}

func TestConsumeSleepValidation(t *testing.T) {
	s := New()
	_, err := s.NewTask(TaskConfig{
		Name: "t", Priority: 20,
		Release: Release{Kind: Aperiodic},
		Body: func(tc *TaskContext) {
			if err := tc.Consume(-1); err == nil {
				t.Error("negative consume accepted")
			}
			if err := tc.Consume(0); err != nil {
				t.Errorf("zero consume: %v", err)
			}
			if err := tc.Sleep(-1); err == nil {
				t.Error("negative sleep accepted")
			}
			if tc.Name() != "t" {
				t.Error("name")
			}
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Run(ms); err != nil {
		t.Fatal(err)
	}
}

func TestWaitMismatchedKind(t *testing.T) {
	s := New()
	_, err := s.NewTask(TaskConfig{
		Name: "a", Priority: 20,
		Release: Release{Kind: Aperiodic},
		Body: func(tc *TaskContext) {
			if tc.WaitForNextPeriod() {
				t.Error("WFNP true for aperiodic")
			}
			if tc.WaitForRelease() {
				t.Error("WaitForRelease true for aperiodic")
			}
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Run(ms); err != nil {
		t.Fatal(err)
	}
}

func TestPriorityPredicates(t *testing.T) {
	if !Priority(30).RealTime() || Priority(5).RealTime() {
		t.Fatal("RealTime band wrong")
	}
	if Priority(0).Valid() || Priority(39).Valid() || !Priority(1).Valid() {
		t.Fatal("Valid range wrong")
	}
	if Periodic.String() != "periodic" || Sporadic.String() != "sporadic" || Aperiodic.String() != "aperiodic" {
		t.Fatal("kind strings")
	}
}

// Property: for random (period, cost, horizon) with cost < period and a
// single task, releases and completions match the analytic count and
// there are no misses.
func TestPeriodicScheduleProperty(t *testing.T) {
	f := func(p8, c8, h8 uint8) bool {
		period := clock.Duration(int(p8%20)+2) * ms
		cost := clock.Duration(int(c8)%max(1, int(period/ms))) * ms / 2
		horizon := clock.Duration(int(h8%10)+1) * 10 * ms
		s := New()
		var n int64
		task, err := s.NewTask(TaskConfig{
			Name: "p", Priority: 20,
			Release: Release{Kind: Periodic, Period: period},
			Body:    periodicBody(cost, &n),
		})
		if err != nil {
			return false
		}
		if err := s.Run(horizon); err != nil {
			return false
		}
		// Releases at 0, period, 2*period, ... <= horizon.
		want := int64(horizon/period) + 1
		st := task.Stats()
		if st.Releases != want || st.Misses != 0 {
			return false
		}
		return st.Completions == want || st.Completions == want-1
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

// Property: with N independent periodic tasks at distinct priorities
// and total utilization < 1, the highest-priority task's response time
// always equals its own cost.
func TestHighestPriorityIsolationProperty(t *testing.T) {
	f := func(n8 uint8) bool {
		n := int(n8%4) + 2
		s := New()
		var counts = make([]int64, n)
		var tasks []*Task
		for i := 0; i < n; i++ {
			task, err := s.NewTask(TaskConfig{
				Name:     string(rune('a' + i)),
				Priority: Priority(30 - i),
				Release:  Release{Kind: Periodic, Period: clock.Duration(10+5*i) * ms},
				Body:     periodicBody(ms, &counts[i]),
			})
			if err != nil {
				return false
			}
			tasks = append(tasks, task)
		}
		if err := s.Run(200 * ms); err != nil {
			return false
		}
		return tasks[0].Stats().MaxResponse == ms
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20}); err != nil {
		t.Fatal(err)
	}
}

func max(a, b int) int {
	if a > b {
		return a
	}
	return b
}
