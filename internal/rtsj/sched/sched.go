package sched

import (
	"container/heap"
	"fmt"
	"sync"

	"soleil/internal/rtsj/clock"
)

// Scheduler is the simulation kernel. Create tasks with NewTask, then
// execute the system with Run. A Scheduler can be Run once.
type Scheduler struct {
	clk   *clock.Virtual
	tasks []*Task
	calls chan *call
	wg    sync.WaitGroup

	events    eventHeap
	eventSeq  int64
	enqueues  int64
	running   *Task
	stopping  bool
	ran       bool
	finished  int
	idleTime  clock.Duration
	preempted int64

	traceOn  bool
	traceCap int
	trace    []TraceEvent
}

// New creates an empty scheduler with a fresh virtual clock.
func New() *Scheduler {
	return &Scheduler{
		clk:   clock.NewVirtual(),
		calls: make(chan *call),
	}
}

// Clock returns the scheduler's virtual clock.
func (s *Scheduler) Clock() *clock.Virtual { return s.clk }

// Preemptions returns the number of times a consuming task was
// preempted by a higher-priority dispatch during the last run.
func (s *Scheduler) Preemptions() int64 { return s.preempted }

// IdleTime returns the virtual time during which no task was ready.
func (s *Scheduler) IdleTime() clock.Duration { return s.idleTime }

// TaskConfig configures a new task.
type TaskConfig struct {
	Name     string
	Priority Priority
	Release  Release
	// Body is the task's code. Periodic bodies are first invoked at
	// the first release and typically loop on WaitForNextPeriod;
	// sporadic bodies are first invoked at the first arrival and loop
	// on WaitForRelease.
	Body func(*TaskContext)
	// OnMiss, if set, is invoked by the kernel when a monitored
	// deadline passes without completion. It runs inside the kernel:
	// it must not call TaskContext methods.
	OnMiss func(MissInfo)
	// OnOverrun, if set, is invoked by the kernel when a release
	// consumes more CPU than its declared Cost budget. Same
	// restrictions as OnMiss.
	OnOverrun func(OverrunInfo)
}

// NewTask registers a task. All tasks must be created before Run.
func (s *Scheduler) NewTask(cfg TaskConfig) (*Task, error) {
	if s.ran {
		return nil, fmt.Errorf("sched: cannot add task %q after Run", cfg.Name)
	}
	if cfg.Name == "" {
		return nil, fmt.Errorf("sched: task needs a name")
	}
	if !cfg.Priority.Valid() {
		return nil, fmt.Errorf("sched: task %q priority %d outside [%d,%d]",
			cfg.Name, cfg.Priority, MinPriority, MaxPriority)
	}
	if cfg.Body == nil {
		return nil, fmt.Errorf("sched: task %q needs a body", cfg.Name)
	}
	if err := cfg.Release.validate(); err != nil {
		return nil, fmt.Errorf("task %q: %w", cfg.Name, err)
	}
	for _, t := range s.tasks {
		if t.name == cfg.Name {
			return nil, fmt.Errorf("sched: duplicate task name %q", cfg.Name)
		}
	}
	t := &Task{
		name:      cfg.Name,
		prio:      cfg.Priority,
		effPrio:   cfg.Priority,
		release:   cfg.Release,
		body:      cfg.Body,
		onMiss:    cfg.OnMiss,
		onOverrun: cfg.OnOverrun,
		sched:     s,
		state:     stateNew,
		cont:      make(chan contMsg, 1),
		held:      make(map[*Mutex]bool),
	}
	s.tasks = append(s.tasks, t)
	return t, nil
}

// Tasks returns the registered tasks in creation order.
func (s *Scheduler) Tasks() []*Task {
	out := make([]*Task, len(s.tasks))
	copy(out, s.tasks)
	return out
}

// --- events -----------------------------------------------------------------

type eventKind int

const (
	evRelease eventKind = iota + 1
	evWakeup
	evDeadline
)

type event struct {
	time clock.Time
	seq  int64 // insertion order tiebreak
	kind eventKind
	task *Task
	// rel identifies the release the event belongs to (deadline
	// monitoring), or carries the nominal release time (evRelease).
	rel        int64
	nominal    clock.Time
	deadlineAt clock.Time
}

type eventHeap []*event

func (h eventHeap) Len() int { return len(h) }
func (h eventHeap) Less(i, j int) bool {
	if h[i].time != h[j].time {
		return h[i].time < h[j].time
	}
	return h[i].seq < h[j].seq
}
func (h eventHeap) Swap(i, j int)       { h[i], h[j] = h[j], h[i] }
func (h *eventHeap) Push(x any)         { *h = append(*h, x.(*event)) }
func (h *eventHeap) Pop() any           { old := *h; n := len(old); e := old[n-1]; *h = old[:n-1]; return e }
func (s *Scheduler) pushEvent(e *event) { e.seq = s.eventSeq; s.eventSeq++; heap.Push(&s.events, e) }
func (s *Scheduler) peekEvent() *event {
	if len(s.events) == 0 {
		return nil
	}
	return s.events[0]
}
func (s *Scheduler) popEvent() *event { return heap.Pop(&s.events).(*event) }

// --- syscall plumbing ---------------------------------------------------------

type callKind int

const (
	callExit callKind = iota + 1
	callConsume
	callSleep
	callWFNP // wait for next period
	callWaitRelease
	callFire
	callYield
	callLock
	callUnlock
)

type call struct {
	task   *Task
	kind   callKind
	d      clock.Duration
	target *Task
	m      *Mutex
	err    chan error // immediate reply for non-yielding calls
}

// submit sends a syscall from task code to the kernel.
func (t *Task) submit(c *call) {
	c.task = t
	t.sched.calls <- c
}

// block parks the task until the kernel dispatches it again.
func (t *Task) block() contMsg { return <-t.cont }
