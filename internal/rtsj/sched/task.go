// Package sched implements a deterministic, priority-preemptive
// real-time scheduler over a virtual clock — the substitution for the
// RTSJ PriorityScheduler plus the RT-Preempt kernel of the paper's
// evaluation platform.
//
// Tasks execute as goroutines, but at most one task runs "on the CPU"
// at a time; every scheduling-relevant operation (consuming CPU time,
// waiting for the next period, firing a sporadic task, locking) is a
// syscall into the scheduler kernel, which advances the virtual clock
// between dispatches. CPU demand is modelled explicitly with
// TaskContext.Consume, during which higher-priority releases preempt
// the running task, exactly as a fixed-priority preemptive scheduler
// would.
package sched

import (
	"errors"
	"fmt"

	"soleil/internal/rtsj/clock"
)

// Priority is a fixed task priority. The range mirrors RTSJ's
// PriorityScheduler: regular Java priorities occupy 1..10 and the 28
// real-time priorities occupy 11..38. Higher values are more urgent.
type Priority int

// Priority ranges.
const (
	MinPriority        Priority = 1
	MaxRegularPriority Priority = 10
	MinRTPriority      Priority = 11
	MaxPriority        Priority = 38
)

// Valid reports whether p is inside the scheduler's priority range.
func (p Priority) Valid() bool { return p >= MinPriority && p <= MaxPriority }

// RealTime reports whether p is in the real-time band.
func (p Priority) RealTime() bool { return p >= MinRTPriority && p <= MaxPriority }

// ReleaseKind classifies a task's release parameters, mirroring RTSJ's
// PeriodicParameters, SporadicParameters and AperiodicParameters.
type ReleaseKind int

// Release kinds.
const (
	// Periodic tasks are released every Period, starting at Start.
	Periodic ReleaseKind = iota + 1
	// Sporadic tasks are released by Fire, with a minimum
	// interarrival time enforced by deferring early arrivals.
	Sporadic
	// Aperiodic tasks are released once, at Start.
	Aperiodic
)

// String returns the ADL spelling of the kind.
func (k ReleaseKind) String() string {
	switch k {
	case Periodic:
		return "periodic"
	case Sporadic:
		return "sporadic"
	case Aperiodic:
		return "aperiodic"
	default:
		return fmt.Sprintf("ReleaseKind(%d)", int(k))
	}
}

// Release holds a task's release parameters.
type Release struct {
	Kind ReleaseKind
	// Start is the offset of the first release (Periodic, Aperiodic).
	Start clock.Duration
	// Period is the release period (Periodic only).
	Period clock.Duration
	// MinInterarrival is the minimum spacing between releases
	// (Sporadic only); early arrivals are deferred.
	MinInterarrival clock.Duration
	// Deadline is the relative deadline of each release; 0 means
	// "equal to Period" for periodic tasks and "unmonitored"
	// otherwise.
	Deadline clock.Duration
	// Cost is the per-release CPU budget, used by schedulability
	// analysis and cost-overrun accounting. It does not limit what
	// the task actually consumes.
	Cost clock.Duration
}

func (r Release) validate() error {
	switch r.Kind {
	case Periodic:
		if r.Period <= 0 {
			return fmt.Errorf("sched: periodic release needs a positive period, got %v", r.Period)
		}
	case Sporadic:
		if r.MinInterarrival < 0 {
			return fmt.Errorf("sched: negative minimum interarrival %v", r.MinInterarrival)
		}
	case Aperiodic:
	default:
		return fmt.Errorf("sched: unknown release kind %v", r.Kind)
	}
	if r.Start < 0 || r.Deadline < 0 || r.Cost < 0 {
		return fmt.Errorf("sched: release parameters must be non-negative: %+v", r)
	}
	return nil
}

// effectiveDeadline returns the monitored relative deadline, or 0 for
// unmonitored.
func (r Release) effectiveDeadline() clock.Duration {
	if r.Deadline > 0 {
		return r.Deadline
	}
	if r.Kind == Periodic {
		return r.Period
	}
	return 0
}

// MissInfo describes one deadline miss, passed to a task's miss
// handler.
type MissInfo struct {
	Task     string
	Release  clock.Time // absolute release time of the missed release
	Deadline clock.Time // absolute deadline that passed
	Now      clock.Time
}

// OverrunInfo describes one cost overrun (a release consuming more
// CPU than its declared budget), passed to a task's overrun handler.
type OverrunInfo struct {
	Task     string
	Release  clock.Time
	Budget   clock.Duration
	Consumed clock.Duration
	Now      clock.Time
}

// taskState tracks where a task is in its lifecycle.
type taskState int

const (
	stateNew         taskState = iota + 1 // goroutine not yet dispatched
	stateReady                            // released, runnable
	stateRunning                          // in real code (holds the CPU)
	stateWaiting                          // waiting for a scheduled release event
	stateWaitingFire                      // sporadic, waiting for an arrival
	stateSleeping                         // in Sleep
	stateBlocked                          // blocked on a mutex
	stateFinished                         // body returned
)

// Stats aggregates a task's observed behaviour over a simulation run.
type Stats struct {
	Releases    int64
	Completions int64
	Misses      int64
	// Overruns counts releases that exceeded their declared cost
	// budget.
	Overruns int64
	// Consumed is the total CPU time the task consumed.
	Consumed clock.Duration
	// MaxResponse / TotalResponse summarize release-to-completion
	// response times.
	MaxResponse   clock.Duration
	TotalResponse clock.Duration
	// MaxStartLatency is the worst observed release-to-first-dispatch
	// latency (release jitter).
	MaxStartLatency clock.Duration
}

// MeanResponse returns the mean response time over completed releases.
func (s Stats) MeanResponse() clock.Duration {
	if s.Completions == 0 {
		return 0
	}
	return s.TotalResponse / clock.Duration(s.Completions)
}

// Task is one schedulable entity.
type Task struct {
	name      string
	prio      Priority
	effPrio   Priority
	release   Release
	body      func(*TaskContext)
	onMiss    func(MissInfo)
	onOverrun func(OverrunInfo)

	sched *Scheduler
	tc    *TaskContext

	// kernel-owned state (only touched by the kernel goroutine, or
	// before Run starts)
	state          taskState
	remaining      clock.Duration // outstanding Consume demand
	cont           chan contMsg   // kernel -> task resume channel
	relSeq         int64          // releases so far
	completedSeq   int64          // last completed release
	currentRelease clock.Time
	dispatchedRel  int64 // last release whose first dispatch was recorded
	lastScheduled  clock.Time
	anyScheduled   bool         // whether lastScheduled is meaningful
	pendingFires   []clock.Time // deferred sporadic effective release times
	relConsumed    clock.Duration
	overrunFlagged bool
	blockedOn      *Mutex          //
	held           map[*Mutex]bool //
	enqueueSeq     int64           // FIFO tiebreak within a priority
	stats          Stats
}

type contMsg struct {
	stopped bool
}

// Name returns the task name.
func (t *Task) Name() string { return t.name }

// Priority returns the task's base priority.
func (t *Task) Priority() Priority { return t.prio }

// Release returns the task's release parameters.
func (t *Task) Release() Release { return t.release }

// Stats returns a copy of the task's statistics. It is only safe to
// call when the scheduler is not running.
func (t *Task) Stats() Stats { return t.stats }

// ErrStopped is returned by blocking task operations when the
// scheduler shut down while the task was waiting.
var ErrStopped = errors.New("sched: scheduler stopped")
