package sched

import (
	"errors"
	"fmt"

	"soleil/internal/rtsj/clock"
)

// errWouldBlock is the kernel's reply when a Lock request must park.
var errWouldBlock = errors.New("sched: would block")

// TaskContext is the handle a task body uses to interact with the
// scheduler. It is only valid inside the body of the task it was
// created for.
type TaskContext struct {
	t *Task
}

// Name returns the task's name.
func (tc *TaskContext) Name() string { return tc.t.name }

// Now returns the current virtual time.
func (tc *TaskContext) Now() clock.Time { return tc.t.sched.clk.Now() }

// ReleaseTime returns the nominal time of the task's current release.
func (tc *TaskContext) ReleaseTime() clock.Time { return tc.t.currentRelease }

// Consume models the task spending d of CPU time. The virtual clock
// advances while the task "computes"; a release of a higher-priority
// task preempts the computation, which resumes when the task is again
// the highest-priority ready task. Returns ErrStopped if the scheduler
// shuts down mid-computation.
func (tc *TaskContext) Consume(d clock.Duration) error {
	if d < 0 {
		return fmt.Errorf("sched: negative consume %v", d)
	}
	if d == 0 {
		return nil
	}
	tc.t.submit(&call{kind: callConsume, d: d})
	if tc.t.block().stopped {
		return ErrStopped
	}
	return nil
}

// Sleep suspends the task for d of virtual time.
func (tc *TaskContext) Sleep(d clock.Duration) error {
	if d < 0 {
		return fmt.Errorf("sched: negative sleep %v", d)
	}
	tc.t.submit(&call{kind: callSleep, d: d})
	if tc.t.block().stopped {
		return ErrStopped
	}
	return nil
}

// WaitForNextPeriod completes the current release and blocks until
// the task's next periodic release. It returns false when the task is
// not periodic or the scheduler stopped — the body should then return.
func (tc *TaskContext) WaitForNextPeriod() bool {
	if tc.t.release.Kind != Periodic {
		return false
	}
	tc.t.submit(&call{kind: callWFNP})
	return !tc.t.block().stopped
}

// WaitForRelease completes the current release and blocks until the
// task's next sporadic arrival (respecting the minimum interarrival
// time). It returns false when the task is not sporadic or the
// scheduler stopped.
func (tc *TaskContext) WaitForRelease() bool {
	if tc.t.release.Kind != Sporadic {
		return false
	}
	tc.t.submit(&call{kind: callWaitRelease})
	return !tc.t.block().stopped
}

// Fire releases the sporadic task target. The arrival is timestamped
// now; arrivals closer together than the target's minimum
// interarrival time are deferred.
func (tc *TaskContext) Fire(target *Task) error {
	if target == nil {
		return fmt.Errorf("sched: fire of nil task")
	}
	if target.release.Kind != Sporadic {
		return fmt.Errorf("sched: task %q is %v, only sporadic tasks can be fired",
			target.name, target.release.Kind)
	}
	c := &call{kind: callFire, target: target, err: make(chan error, 1)}
	tc.t.submit(c)
	return <-c.err
}

// Yield gives up the CPU; the task stays ready and is re-dispatched
// after equal-priority peers queued before it.
func (tc *TaskContext) Yield() error {
	tc.t.submit(&call{kind: callYield})
	if tc.t.block().stopped {
		return ErrStopped
	}
	return nil
}

// Lock acquires m, blocking if it is held. While blocked, the task's
// priority is inherited by the owner (priority inheritance protocol).
func (tc *TaskContext) Lock(m *Mutex) error {
	if m == nil {
		return fmt.Errorf("sched: lock of nil mutex")
	}
	c := &call{kind: callLock, m: m, err: make(chan error, 1)}
	tc.t.submit(c)
	err := <-c.err
	if errors.Is(err, errWouldBlock) {
		if tc.t.block().stopped {
			return ErrStopped
		}
		return nil
	}
	return err
}

// Unlock releases m, waking its highest-priority waiter.
func (tc *TaskContext) Unlock(m *Mutex) error {
	if m == nil {
		return fmt.Errorf("sched: unlock of nil mutex")
	}
	c := &call{kind: callUnlock, m: m, err: make(chan error, 1)}
	tc.t.submit(c)
	return <-c.err
}
