package sched

import (
	"testing"
	"testing/quick"
	"time"

	"soleil/internal/rtsj/clock"
)

// TestMutexWakesHighestPriorityWaiter: three tasks of different
// priorities contend for one lock; the holder releases and the
// highest-priority waiter must acquire first.
func TestMutexWakesHighestPriorityWaiter(t *testing.T) {
	s := New()
	m := s.NewMutex("m")
	var acquisitions []string

	_, err := s.NewTask(TaskConfig{
		Name: "holder", Priority: 35,
		Release: Release{Kind: Aperiodic},
		Body: func(tc *TaskContext) {
			if err := tc.Lock(m); err != nil {
				return
			}
			// Hold long enough for all waiters to queue.
			if err := tc.Consume(5 * ms); err != nil {
				return
			}
			_ = tc.Unlock(m)
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	waiter := func(name string, prio Priority, start clock.Duration) {
		_, err := s.NewTask(TaskConfig{
			Name: name, Priority: prio,
			Release: Release{Kind: Aperiodic, Start: start},
			Body: func(tc *TaskContext) {
				if err := tc.Lock(m); err != nil {
					return
				}
				acquisitions = append(acquisitions, name)
				_ = tc.Unlock(m)
			},
		})
		if err != nil {
			t.Fatal(err)
		}
	}
	waiter("low", 12, ms)
	waiter("mid", 18, 2*ms)
	waiter("high", 25, 3*ms)
	if err := s.Run(50 * ms); err != nil {
		t.Fatal(err)
	}
	want := []string{"high", "mid", "low"}
	if len(acquisitions) != 3 {
		t.Fatalf("acquisitions = %v", acquisitions)
	}
	for i := range want {
		if acquisitions[i] != want[i] {
			t.Fatalf("acquisition order = %v, want %v", acquisitions, want)
		}
	}
}

// TestSporadicBacklog: arrivals landing while the sporadic task is
// busy queue up and are served in order.
func TestSporadicBacklog(t *testing.T) {
	s := New()
	var served int
	sp, err := s.NewTask(TaskConfig{
		Name: "worker", Priority: 15,
		Release: Release{Kind: Sporadic},
		Body: func(tc *TaskContext) {
			for {
				served++
				if err := tc.Consume(3 * ms); err != nil {
					return
				}
				if !tc.WaitForRelease() {
					return
				}
			}
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	_, err = s.NewTask(TaskConfig{
		Name: "burst", Priority: 30,
		Release: Release{Kind: Aperiodic},
		Body: func(tc *TaskContext) {
			for i := 0; i < 4; i++ {
				if err := tc.Fire(sp); err != nil {
					return
				}
			}
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Run(50 * ms); err != nil {
		t.Fatal(err)
	}
	if served != 4 {
		t.Fatalf("served = %d, want 4 (backlog lost)", served)
	}
	if got := sp.Stats().Releases; got != 4 {
		t.Fatalf("releases = %d", got)
	}
}

// TestPeriodicOverrunReleasesImmediately: a job longer than its period
// re-releases immediately after completion rather than skipping.
func TestPeriodicOverrunReleasesImmediately(t *testing.T) {
	s := New()
	var n int64
	task, err := s.NewTask(TaskConfig{
		Name: "over", Priority: 20,
		Release: Release{Kind: Periodic, Period: 10 * ms},
		Body:    periodicBody(15*ms, &n),
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Run(65 * ms); err != nil {
		t.Fatal(err)
	}
	// Completions at 15,30,45,60: four full jobs in 65ms.
	if got := task.Stats().Completions; got != 4 {
		t.Fatalf("completions = %d", got)
	}
	// Every release after the first missed its (implicit) deadline.
	if got := task.Stats().Misses; got < 3 {
		t.Fatalf("misses = %d", got)
	}
}

// TestConsumedNeverExceedsHorizon: across random task sets, total
// consumed CPU never exceeds the virtual horizon (the scheduler is a
// single CPU), and idle+consumed accounts for the horizon when any
// work exists.
func TestConsumedNeverExceedsHorizonProperty(t *testing.T) {
	f := func(p1, p2, c1, c2 uint8) bool {
		s := New()
		mk := func(name string, prio Priority, p, c uint8) bool {
			period := clock.Duration(int(p%30)+5) * ms
			cost := clock.Duration(int(c)%int(period/ms)+1) * ms / 2
			var n int64
			_, err := s.NewTask(TaskConfig{
				Name: name, Priority: prio,
				Release: Release{Kind: Periodic, Period: period},
				Body:    periodicBody(cost, &n),
			})
			return err == nil
		}
		if !mk("a", 25, p1, c1) || !mk("b", 20, p2, c2) {
			return false
		}
		const horizon = 200 * ms
		if err := s.Run(horizon); err != nil {
			return false
		}
		var consumed clock.Duration
		for _, task := range s.Tasks() {
			consumed += task.Stats().Consumed
		}
		return consumed <= horizon
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

// TestReleaseJitterUnderLoad: a low-priority periodic task's start
// latency is bounded by the higher-priority demand in its period.
func TestReleaseJitterUnderLoad(t *testing.T) {
	s := New()
	var hi, lo int64
	_, err := s.NewTask(TaskConfig{
		Name: "hi", Priority: 30,
		Release: Release{Kind: Periodic, Period: 5 * ms},
		Body:    periodicBody(2*ms, &hi),
	})
	if err != nil {
		t.Fatal(err)
	}
	low, err := s.NewTask(TaskConfig{
		Name: "lo", Priority: 15,
		Release: Release{Kind: Periodic, Period: 20 * ms},
		Body:    periodicBody(ms, &lo),
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Run(200 * ms); err != nil {
		t.Fatal(err)
	}
	if got := low.Stats().MaxStartLatency; got != 2*ms {
		t.Fatalf("low start latency = %v, want 2ms (one hi job)", got)
	}
	if low.Stats().Misses != 0 {
		t.Fatalf("low misses = %d", low.Stats().Misses)
	}
}

// TestTwoLocksTransitiveInheritance: H blocks on m2 held by M, which
// blocks on m1 held by L; L must inherit H's priority transitively.
func TestTwoLocksTransitiveInheritance(t *testing.T) {
	s := New()
	m1 := s.NewMutex("m1")
	m2 := s.NewMutex("m2")
	_, err := s.NewTask(TaskConfig{
		Name: "L", Priority: 12,
		Release: Release{Kind: Aperiodic},
		Body: func(tc *TaskContext) {
			if err := tc.Lock(m1); err != nil {
				return
			}
			if err := tc.Consume(10 * ms); err != nil {
				return
			}
			_ = tc.Unlock(m1)
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	_, err = s.NewTask(TaskConfig{
		Name: "M", Priority: 16,
		Release: Release{Kind: Aperiodic, Start: ms},
		Body: func(tc *TaskContext) {
			if err := tc.Lock(m2); err != nil {
				return
			}
			if err := tc.Lock(m1); err != nil { // blocks on L
				return
			}
			_ = tc.Unlock(m1)
			if err := tc.Consume(2 * ms); err != nil {
				return
			}
			_ = tc.Unlock(m2)
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	// A middle-priority CPU hog that would starve L without
	// transitive inheritance.
	_, err = s.NewTask(TaskConfig{
		Name: "hog", Priority: 20,
		Release: Release{Kind: Aperiodic, Start: 3 * ms},
		Body: func(tc *TaskContext) {
			_ = tc.Consume(30 * ms)
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	high, err := s.NewTask(TaskConfig{
		Name: "H", Priority: 28,
		Release: Release{Kind: Aperiodic, Start: 2 * ms},
		Body: func(tc *TaskContext) {
			if err := tc.Lock(m2); err != nil { // blocks on M, which blocks on L
				return
			}
			if err := tc.Consume(ms); err != nil {
				return
			}
			_ = tc.Unlock(m2)
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Run(100 * ms); err != nil {
		t.Fatal(err)
	}
	// With transitive inheritance: H waits for L's 9ms remaining +
	// M's 2ms + its own 1ms ≈ 12ms. Without it, the 30ms hog
	// interposes (response ≈ 40ms).
	if got := high.Stats().MaxResponse; got > 15*ms {
		t.Fatalf("H response %v — transitive inheritance broken", got)
	}
}

// TestSporadicDeadlineMonitoring: sporadic releases with explicit
// deadlines are monitored per arrival.
func TestSporadicDeadlineMonitoring(t *testing.T) {
	s := New()
	sp, err := s.NewTask(TaskConfig{
		Name: "slow", Priority: 15,
		Release: Release{Kind: Sporadic, Deadline: 2 * ms},
		Body: func(tc *TaskContext) {
			for {
				if err := tc.Consume(5 * ms); err != nil {
					return
				}
				if !tc.WaitForRelease() {
					return
				}
			}
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	_, err = s.NewTask(TaskConfig{
		Name: "trigger", Priority: 30,
		Release: Release{Kind: Aperiodic},
		Body: func(tc *TaskContext) {
			_ = tc.Fire(sp)
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Run(30 * ms); err != nil {
		t.Fatal(err)
	}
	if got := sp.Stats().Misses; got != 1 {
		t.Fatalf("misses = %d, want 1", got)
	}
}

func TestSchedulerTasksAccessor(t *testing.T) {
	s := New()
	if _, err := s.NewTask(TaskConfig{
		Name: "a", Priority: 10, Release: Release{Kind: Aperiodic},
		Body: func(*TaskContext) {},
	}); err != nil {
		t.Fatal(err)
	}
	if got := len(s.Tasks()); got != 1 {
		t.Fatalf("tasks = %d", got)
	}
	if s.Tasks()[0].Name() != "a" || s.Tasks()[0].Priority() != 10 {
		t.Fatal("task accessors")
	}
	if s.Tasks()[0].Release().Kind != Aperiodic {
		t.Fatal("release accessor")
	}
	if err := s.Run(time.Millisecond); err != nil {
		t.Fatal(err)
	}
	if _, err := s.NewTask(TaskConfig{
		Name: "late", Priority: 10, Release: Release{Kind: Aperiodic},
		Body: func(*TaskContext) {},
	}); err == nil {
		t.Fatal("task added after run")
	}
}
