package sched

import (
	"fmt"
	"io"

	"soleil/internal/rtsj/clock"
)

// EventKind classifies scheduler trace events.
type EventKind int

// Trace event kinds.
const (
	EventRelease EventKind = iota + 1
	EventDispatch
	EventPreempt
	EventComplete
	EventMiss
	EventOverrun
	EventBlock
	EventUnblock
)

// String returns the event name.
func (k EventKind) String() string {
	switch k {
	case EventRelease:
		return "release"
	case EventDispatch:
		return "dispatch"
	case EventPreempt:
		return "preempt"
	case EventComplete:
		return "complete"
	case EventMiss:
		return "miss"
	case EventOverrun:
		return "overrun"
	case EventBlock:
		return "block"
	case EventUnblock:
		return "unblock"
	default:
		return fmt.Sprintf("EventKind(%d)", int(k))
	}
}

// TraceEvent is one scheduling decision in the execution trace.
type TraceEvent struct {
	Time clock.Time
	Kind EventKind
	Task string
	// Detail carries event-specific context (e.g. the lock name for
	// block/unblock, the overrun amount).
	Detail string
}

func (e TraceEvent) String() string {
	s := fmt.Sprintf("[%12v] %-8s %s", e.Time, e.Kind, e.Task)
	if e.Detail != "" {
		s += " (" + e.Detail + ")"
	}
	return s
}

// EnableTrace turns on the execution trace, keeping at most capacity
// events (0 = unbounded). Call before Run.
func (s *Scheduler) EnableTrace(capacity int) {
	s.traceOn = true
	s.traceCap = capacity
	if capacity > 0 {
		s.trace = make([]TraceEvent, 0, capacity)
	}
}

// Trace returns a copy of the recorded events. Call after Run.
func (s *Scheduler) Trace() []TraceEvent {
	out := make([]TraceEvent, len(s.trace))
	copy(out, s.trace)
	return out
}

// WriteTrace renders the recorded schedule chronologically.
func (s *Scheduler) WriteTrace(w io.Writer) error {
	for _, e := range s.trace {
		if _, err := fmt.Fprintln(w, e); err != nil {
			return err
		}
	}
	return nil
}

// emit records one trace event (kernel goroutine only).
func (s *Scheduler) emit(kind EventKind, task *Task, detail string) {
	if !s.traceOn {
		return
	}
	if s.traceCap > 0 && len(s.trace) >= s.traceCap {
		return
	}
	s.trace = append(s.trace, TraceEvent{
		Time: s.clk.Now(), Kind: kind, Task: task.name, Detail: detail,
	})
}
