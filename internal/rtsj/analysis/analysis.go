// Package analysis implements classical fixed-priority and EDF
// schedulability analysis. The paper places its framework "directly
// afterwards" the timing and schedulability analysis stages of
// real-time design (Sect. 1.2); this package supplies that upstream
// stage so that ThreadDomain configurations can be admitted or refused
// before deployment.
package analysis

import (
	"fmt"
	"math"
	"sort"
	"time"
)

// Task is the analysis view of one periodic or sporadic task.
type Task struct {
	Name string
	// Period is the period (periodic) or minimum interarrival time
	// (sporadic).
	Period time.Duration
	// Cost is the worst-case execution time per release.
	Cost time.Duration
	// Deadline is the relative deadline; 0 means deadline = period.
	Deadline time.Duration
	// Blocking is the worst-case blocking from lower-priority tasks
	// (e.g. priority-inheritance critical sections).
	Blocking time.Duration
	// Priority orders the tasks for fixed-priority analysis; higher
	// is more urgent.
	Priority int
}

func (t Task) deadline() time.Duration {
	if t.Deadline > 0 {
		return t.Deadline
	}
	return t.Period
}

func (t Task) validate() error {
	if t.Period <= 0 {
		return fmt.Errorf("analysis: task %q needs a positive period", t.Name)
	}
	if t.Cost <= 0 {
		return fmt.Errorf("analysis: task %q needs a positive cost", t.Name)
	}
	if t.Cost > t.deadline() {
		return fmt.Errorf("analysis: task %q cost %v exceeds its deadline %v",
			t.Name, t.Cost, t.deadline())
	}
	if t.Blocking < 0 || t.Deadline < 0 {
		return fmt.Errorf("analysis: task %q has negative parameters", t.Name)
	}
	return nil
}

// Utilization returns the total processor utilization sum(C_i/T_i).
func Utilization(tasks []Task) float64 {
	var u float64
	for _, t := range tasks {
		u += float64(t.Cost) / float64(t.Period)
	}
	return u
}

// LiuLaylandBound returns the rate-monotonic utilization bound
// n(2^(1/n)-1) for n tasks.
func LiuLaylandBound(n int) float64 {
	if n <= 0 {
		return 0
	}
	return float64(n) * (math.Pow(2, 1/float64(n)) - 1)
}

// RMUtilizationTest applies the Liu & Layland sufficient test for
// rate-monotonic priorities and implicit deadlines: schedulable if
// total utilization is at or below the bound for the task count. A
// false result is inconclusive (use ResponseTimeAnalysis).
func RMUtilizationTest(tasks []Task) (bool, float64, float64) {
	u := Utilization(tasks)
	bound := LiuLaylandBound(len(tasks))
	return u <= bound, u, bound
}

// AssignRateMonotonic sets task priorities rate-monotonically: the
// shorter the period, the higher the priority. It returns a new slice
// sorted by descending priority.
func AssignRateMonotonic(tasks []Task) []Task {
	out := make([]Task, len(tasks))
	copy(out, tasks)
	sort.SliceStable(out, func(i, j int) bool { return out[i].Period < out[j].Period })
	for i := range out {
		out[i].Priority = len(out) - i
	}
	return out
}

// AssignDeadlineMonotonic sets task priorities deadline-monotonically:
// the shorter the (effective) deadline, the higher the priority —
// optimal among fixed-priority policies for constrained deadlines.
// It returns a new slice sorted by descending priority.
func AssignDeadlineMonotonic(tasks []Task) []Task {
	out := make([]Task, len(tasks))
	copy(out, tasks)
	sort.SliceStable(out, func(i, j int) bool { return out[i].deadline() < out[j].deadline() })
	for i := range out {
		out[i].Priority = len(out) - i
	}
	return out
}

// Hyperperiod returns the least common multiple of the task periods —
// the cycle after which a synchronous periodic schedule repeats.
func Hyperperiod(tasks []Task) time.Duration {
	if len(tasks) == 0 {
		return 0
	}
	lcm := int64(tasks[0].Period)
	for _, t := range tasks[1:] {
		p := int64(t.Period)
		if p == 0 {
			continue
		}
		lcm = lcm / gcd(lcm, p) * p
	}
	return time.Duration(lcm)
}

func gcd(a, b int64) int64 {
	for b != 0 {
		a, b = b, a%b
	}
	return a
}

// Response is the outcome of response-time analysis for one task.
type Response struct {
	Task        string
	WorstCase   time.Duration
	Deadline    time.Duration
	Schedulable bool
	// Iterations records the fixpoint iterations the recurrence took.
	Iterations int
}

// ResponseTimeAnalysis runs the exact fixed-priority response-time
// recurrence
//
//	R_i = C_i + B_i + sum_{j in hp(i)} ceil(R_i/T_j) * C_j
//
// for every task. Tasks are ordered by their Priority field (higher
// number = higher priority). The analysis requires deadlines at or
// below periods. It returns one Response per input task, in input
// order, and reports an error only for invalid task sets — an
// unschedulable task yields Schedulable=false, not an error.
func ResponseTimeAnalysis(tasks []Task) ([]Response, error) {
	for _, t := range tasks {
		if err := t.validate(); err != nil {
			return nil, err
		}
		if t.deadline() > t.Period {
			return nil, fmt.Errorf("analysis: task %q has deadline %v beyond its period %v (unsupported)",
				t.Name, t.deadline(), t.Period)
		}
	}
	// Analysis order: by descending priority, stable for ties.
	order := make([]int, len(tasks))
	for i := range order {
		order[i] = i
	}
	sort.SliceStable(order, func(a, b int) bool {
		return tasks[order[a]].Priority > tasks[order[b]].Priority
	})

	out := make([]Response, len(tasks))
	for rank, idx := range order {
		t := tasks[idx]
		hp := make([]Task, 0, rank)
		for _, j := range order[:rank] {
			hp = append(hp, tasks[j])
		}
		r := Response{Task: t.Name, Deadline: t.deadline()}
		wc := t.Cost + t.Blocking
		for {
			r.Iterations++
			var interference time.Duration
			for _, h := range hp {
				n := int64(math.Ceil(float64(wc) / float64(h.Period)))
				interference += time.Duration(n) * h.Cost
			}
			next := t.Cost + t.Blocking + interference
			if next == wc {
				r.WorstCase = wc
				r.Schedulable = wc <= r.Deadline
				break
			}
			wc = next
			if wc > r.Deadline {
				r.WorstCase = wc
				r.Schedulable = false
				break
			}
		}
		out[idx] = r
	}
	return out, nil
}

// EDFDensityTest applies the sufficient density condition for EDF:
// sum(C_i / min(D_i, T_i)) <= 1.
func EDFDensityTest(tasks []Task) (bool, float64) {
	var density float64
	for _, t := range tasks {
		d := t.deadline()
		if t.Period < d {
			d = t.Period
		}
		density += float64(t.Cost) / float64(d)
	}
	return density <= 1, density
}

// Harmonic reports whether the task periods are pairwise harmonic
// (each longer period is an integer multiple of each shorter one), in
// which case rate-monotonic scheduling is optimal up to full
// utilization.
func Harmonic(tasks []Task) bool {
	periods := make([]time.Duration, 0, len(tasks))
	for _, t := range tasks {
		periods = append(periods, t.Period)
	}
	sort.Slice(periods, func(i, j int) bool { return periods[i] < periods[j] })
	for i := 1; i < len(periods); i++ {
		if periods[i-1] == 0 || periods[i]%periods[i-1] != 0 {
			return false
		}
	}
	return true
}
