package analysis

import (
	"math"
	"testing"
	"testing/quick"
	"time"
)

const ms = time.Millisecond

func TestUtilization(t *testing.T) {
	tasks := []Task{
		{Name: "a", Period: 10 * ms, Cost: 2 * ms},
		{Name: "b", Period: 20 * ms, Cost: 4 * ms},
	}
	if u := Utilization(tasks); math.Abs(u-0.4) > 1e-9 {
		t.Fatalf("utilization = %v, want 0.4", u)
	}
}

func TestLiuLaylandBound(t *testing.T) {
	if got := LiuLaylandBound(1); math.Abs(got-1.0) > 1e-9 {
		t.Fatalf("bound(1) = %v", got)
	}
	if got := LiuLaylandBound(2); math.Abs(got-0.8284271247) > 1e-6 {
		t.Fatalf("bound(2) = %v", got)
	}
	if got := LiuLaylandBound(0); got != 0 {
		t.Fatalf("bound(0) = %v", got)
	}
	// The bound decreases towards ln 2.
	if LiuLaylandBound(100) < math.Ln2 || LiuLaylandBound(100) > LiuLaylandBound(2) {
		t.Fatal("bound not converging toward ln 2")
	}
}

func TestRMUtilizationTest(t *testing.T) {
	ok, u, bound := RMUtilizationTest([]Task{
		{Name: "a", Period: 10 * ms, Cost: 2 * ms},
		{Name: "b", Period: 20 * ms, Cost: 4 * ms},
	})
	if !ok || u > bound {
		t.Fatalf("0.4 utilization refused (bound %v)", bound)
	}
	ok, _, _ = RMUtilizationTest([]Task{
		{Name: "a", Period: 10 * ms, Cost: 5 * ms},
		{Name: "b", Period: 20 * ms, Cost: 8 * ms},
	})
	if ok {
		t.Fatal("0.9 utilization passed the Liu-Layland test for n=2")
	}
}

func TestAssignRateMonotonic(t *testing.T) {
	tasks := AssignRateMonotonic([]Task{
		{Name: "slow", Period: 100 * ms, Cost: ms},
		{Name: "fast", Period: 10 * ms, Cost: ms},
		{Name: "mid", Period: 50 * ms, Cost: ms},
	})
	if tasks[0].Name != "fast" || tasks[2].Name != "slow" {
		t.Fatalf("order = %v, %v, %v", tasks[0].Name, tasks[1].Name, tasks[2].Name)
	}
	if tasks[0].Priority <= tasks[1].Priority || tasks[1].Priority <= tasks[2].Priority {
		t.Fatal("priorities not strictly decreasing with period")
	}
}

// Textbook example (Burns & Wellings): C=(3,3,5), T=(7,12,20), RM
// priorities. Worst-case responses are 3, 6 and 20 — all schedulable.
func TestResponseTimeAnalysisTextbook(t *testing.T) {
	tasks := []Task{
		{Name: "t1", Period: 7 * ms, Cost: 3 * ms, Priority: 3},
		{Name: "t2", Period: 12 * ms, Cost: 3 * ms, Priority: 2},
		{Name: "t3", Period: 20 * ms, Cost: 5 * ms, Priority: 1},
	}
	rs, err := ResponseTimeAnalysis(tasks)
	if err != nil {
		t.Fatal(err)
	}
	want := []time.Duration{3 * ms, 6 * ms, 20 * ms}
	for i, r := range rs {
		if !r.Schedulable {
			t.Errorf("%s unschedulable (R=%v)", r.Task, r.WorstCase)
		}
		if r.WorstCase != want[i] {
			t.Errorf("%s worst case = %v, want %v", r.Task, r.WorstCase, want[i])
		}
	}
}

func TestResponseTimeAnalysisUnschedulable(t *testing.T) {
	tasks := []Task{
		{Name: "hi", Period: 10 * ms, Cost: 6 * ms, Priority: 2},
		{Name: "lo", Period: 14 * ms, Cost: 6 * ms, Priority: 1},
	}
	rs, err := ResponseTimeAnalysis(tasks)
	if err != nil {
		t.Fatal(err)
	}
	if !rs[0].Schedulable {
		t.Error("high-priority task should be schedulable")
	}
	if rs[1].Schedulable {
		t.Errorf("low-priority task schedulable with R=%v", rs[1].WorstCase)
	}
}

func TestResponseTimeAnalysisBlocking(t *testing.T) {
	tasks := []Task{
		{Name: "hi", Period: 10 * ms, Cost: 2 * ms, Blocking: 3 * ms, Priority: 2},
		{Name: "lo", Period: 30 * ms, Cost: 5 * ms, Priority: 1},
	}
	rs, err := ResponseTimeAnalysis(tasks)
	if err != nil {
		t.Fatal(err)
	}
	if rs[0].WorstCase != 5*ms {
		t.Fatalf("blocked response = %v, want 5ms", rs[0].WorstCase)
	}
}

func TestResponseTimeAnalysisValidation(t *testing.T) {
	bad := [][]Task{
		{{Name: "a", Period: 0, Cost: ms}},
		{{Name: "a", Period: 10 * ms, Cost: 0}},
		{{Name: "a", Period: 10 * ms, Cost: 5 * ms, Deadline: 2 * ms}},
		{{Name: "a", Period: 10 * ms, Cost: ms, Deadline: 20 * ms}},
		{{Name: "a", Period: 10 * ms, Cost: ms, Blocking: -ms}},
	}
	for i, ts := range bad {
		if _, err := ResponseTimeAnalysis(ts); err == nil {
			t.Errorf("case %d accepted", i)
		}
	}
}

func TestEDFDensityTest(t *testing.T) {
	ok, d := EDFDensityTest([]Task{
		{Name: "a", Period: 10 * ms, Cost: 4 * ms},
		{Name: "b", Period: 20 * ms, Cost: 10 * ms},
	})
	if !ok || math.Abs(d-0.9) > 1e-9 {
		t.Fatalf("density = %v ok=%v", d, ok)
	}
	ok, _ = EDFDensityTest([]Task{
		{Name: "a", Period: 10 * ms, Cost: 4 * ms, Deadline: 5 * ms},
		{Name: "b", Period: 20 * ms, Cost: 10 * ms},
	})
	if ok {
		t.Fatal("density > 1 accepted")
	}
}

func TestHarmonic(t *testing.T) {
	if !Harmonic([]Task{{Period: 10 * ms}, {Period: 20 * ms}, {Period: 40 * ms}}) {
		t.Fatal("harmonic set refused")
	}
	if Harmonic([]Task{{Period: 10 * ms}, {Period: 15 * ms}}) {
		t.Fatal("non-harmonic set accepted")
	}
	if !Harmonic(nil) {
		t.Fatal("empty set should be trivially harmonic")
	}
}

// Property: whenever the RM utilization test admits a task set with
// rate-monotonic priorities, response-time analysis agrees.
func TestRMImpliesRTAProperty(t *testing.T) {
	f := func(p1, p2, p3 uint8, c1, c2, c3 uint8) bool {
		mk := func(p, c uint8, name string) Task {
			period := time.Duration(int(p%50)+10) * ms
			cost := time.Duration(int(c)%int(period/ms)/4+1) * ms
			return Task{Name: name, Period: period, Cost: cost}
		}
		tasks := AssignRateMonotonic([]Task{mk(p1, c1, "a"), mk(p2, c2, "b"), mk(p3, c3, "c")})
		ok, _, _ := RMUtilizationTest(tasks)
		if !ok {
			return true // inconclusive, nothing to check
		}
		rs, err := ResponseTimeAnalysis(tasks)
		if err != nil {
			return false
		}
		for _, r := range rs {
			if !r.Schedulable {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

// Property: the worst-case response of the highest-priority task is
// always exactly its cost plus blocking.
func TestTopTaskResponseProperty(t *testing.T) {
	f := func(c uint8, b uint8) bool {
		cost := time.Duration(int(c%8)+1) * ms
		blocking := time.Duration(int(b%4)) * ms
		tasks := []Task{
			{Name: "top", Period: 100 * ms, Cost: cost, Blocking: blocking, Priority: 10},
			{Name: "low", Period: 200 * ms, Cost: 10 * ms, Priority: 1},
		}
		rs, err := ResponseTimeAnalysis(tasks)
		if err != nil {
			return false
		}
		return rs[0].WorstCase == cost+blocking
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func TestAssignDeadlineMonotonic(t *testing.T) {
	tasks := AssignDeadlineMonotonic([]Task{
		{Name: "looseDL", Period: 10 * ms, Cost: ms, Deadline: 9 * ms},
		{Name: "tightDL", Period: 100 * ms, Cost: ms, Deadline: 2 * ms},
		{Name: "implicit", Period: 20 * ms, Cost: ms}, // deadline = 20ms
	})
	if tasks[0].Name != "tightDL" || tasks[1].Name != "looseDL" || tasks[2].Name != "implicit" {
		t.Fatalf("order = %v, %v, %v", tasks[0].Name, tasks[1].Name, tasks[2].Name)
	}
	if tasks[0].Priority <= tasks[1].Priority {
		t.Fatal("priorities not decreasing with deadline")
	}
}

func TestHyperperiod(t *testing.T) {
	got := Hyperperiod([]Task{
		{Period: 10 * ms}, {Period: 15 * ms}, {Period: 4 * ms},
	})
	if got != 60*ms {
		t.Fatalf("hyperperiod = %v, want 60ms", got)
	}
	if Hyperperiod(nil) != 0 {
		t.Fatal("empty hyperperiod")
	}
	if Hyperperiod([]Task{{Period: 7 * ms}, {Period: 0}}) != 7*ms {
		t.Fatal("zero period should be skipped")
	}
}
