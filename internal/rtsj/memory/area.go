// Package memory implements a user-level reproduction of the RTSJ
// memory model: heap, immortal and scoped memory areas with byte
// accounting, enter/exit semantics, reference counting, portals, the
// single parent rule, and dynamic enforcement of the RTSJ assignment
// rules.
//
// This is the substitution substrate for the paper's RTSJ JVM: Go's
// garbage collector cannot provide real scoped memory, so the framework
// is instead exercised against a region runtime that enforces the same
// rules dynamically (IllegalAssignmentError, ScopedCycleException,
// MemoryAccessError, OutOfMemoryError analogues). See DESIGN.md §2.
package memory

import (
	"fmt"
	"sync"
)

// Kind distinguishes the three RTSJ memory region kinds.
type Kind int

// Memory area kinds, mirroring RTSJ's HeapMemory, ImmortalMemory and
// ScopedMemory.
const (
	Heap Kind = iota + 1
	Immortal
	Scoped
)

// String returns the lower-case kind name used by the ADL.
func (k Kind) String() string {
	switch k {
	case Heap:
		return "heap"
	case Immortal:
		return "immortal"
	case Scoped:
		return "scope"
	default:
		return fmt.Sprintf("Kind(%d)", int(k))
	}
}

// Area is a memory region. Heap and immortal areas live for the whole
// runtime; scoped areas are reclaimed when the last thread leaves them.
//
// All methods are safe for concurrent use.
type Area struct {
	name string
	kind Kind
	size int64 // 0 = unbounded (heap)

	mu         sync.Mutex
	consumed   int64
	peak       int64
	refcount   int    // scoped: number of threads currently inside
	gen        uint64 // scoped: incremented on each reclaim
	parent     *Area  // scoped: established by first entry
	portal     *Ref
	finalizers []func()
	allocs     int64 // lifetime allocation count (for footprint reports)
}

// Name returns the area's name ("heap", "immortal", or the scope name).
func (a *Area) Name() string { return a.name }

// Kind returns the area's kind.
func (a *Area) Kind() Kind { return a.kind }

// Size returns the configured size in bytes; 0 means unbounded.
func (a *Area) Size() int64 { return a.size }

// Consumed returns the bytes currently allocated in the area.
func (a *Area) Consumed() int64 {
	a.mu.Lock()
	defer a.mu.Unlock()
	return a.consumed
}

// Peak returns the high-water mark of Consumed over the area's life.
func (a *Area) Peak() int64 {
	a.mu.Lock()
	defer a.mu.Unlock()
	return a.peak
}

// Allocations returns the lifetime number of allocations in the area.
func (a *Area) Allocations() int64 {
	a.mu.Lock()
	defer a.mu.Unlock()
	return a.allocs
}

// Active reports whether the area can currently satisfy allocations.
// Heap and immortal are always active; a scope is active while at
// least one thread is inside it.
func (a *Area) Active() bool {
	if a.kind != Scoped {
		return true
	}
	a.mu.Lock()
	defer a.mu.Unlock()
	return a.refcount > 0
}

// Parent returns the scope's established parent area, or nil if the
// scope is not active (or the area is not scoped).
func (a *Area) Parent() *Area {
	a.mu.Lock()
	defer a.mu.Unlock()
	return a.parent
}

// Generation returns the scope's reclamation generation. References
// carry the generation they were allocated under; a mismatch marks
// them dangling.
func (a *Area) Generation() uint64 {
	a.mu.Lock()
	defer a.mu.Unlock()
	return a.gen
}

// AddFinalizer registers fn to run when the scope is reclaimed (its
// reference count drops to zero). For heap and immortal areas the
// finalizer never runs; registering one is refused.
func (a *Area) AddFinalizer(fn func()) error {
	if a.kind != Scoped {
		return fmt.Errorf("memory: finalizers are only supported on scoped areas, not %s", a.kind)
	}
	a.mu.Lock()
	defer a.mu.Unlock()
	if a.refcount == 0 {
		return &InactiveScopeError{Scope: a.name, Op: "AddFinalizer"}
	}
	a.finalizers = append(a.finalizers, fn)
	return nil
}

// alloc charges size bytes to the area and returns the generation the
// allocation belongs to.
func (a *Area) alloc(size int64) (uint64, error) {
	if size < 0 {
		return 0, fmt.Errorf("memory: negative allocation size %d", size)
	}
	a.mu.Lock()
	defer a.mu.Unlock()
	if a.kind == Scoped && a.refcount == 0 {
		return 0, &InactiveScopeError{Scope: a.name, Op: "allocate"}
	}
	if a.size > 0 && a.consumed+size > a.size {
		return 0, &OutOfMemoryError{Area: a.name, Size: a.size, Consumed: a.consumed, Requested: size}
	}
	a.consumed += size
	if a.consumed > a.peak {
		a.peak = a.consumed
	}
	a.allocs++
	return a.gen, nil
}

// free returns size bytes to the area. Only heap objects are
// individually collectable in this runtime; scoped and immortal memory
// is reclaimed wholesale (scoped) or never (immortal), matching RTSJ.
func (a *Area) free(size int64) {
	if a.kind != Heap {
		return
	}
	a.mu.Lock()
	defer a.mu.Unlock()
	a.consumed -= size
	if a.consumed < 0 {
		a.consumed = 0
	}
}

// enter records a thread entering the area, enforcing the single
// parent rule for scopes: the first entry establishes the parent; any
// entry while active must come from the same parent area.
func (a *Area) enter(from *Area) error {
	if a.kind != Scoped {
		return nil
	}
	a.mu.Lock()
	defer a.mu.Unlock()
	if a.refcount == 0 {
		a.parent = from
	} else if a.parent != from {
		parent := "<nil>"
		if a.parent != nil {
			parent = a.parent.name
		}
		via := "<nil>"
		if from != nil {
			via = from.name
		}
		return &ScopedCycleError{Scope: a.name, Parent: parent, EnteredVia: via}
	}
	a.refcount++
	return nil
}

// exit records a thread leaving the area. When the last thread leaves
// a scope, its finalizers run and its contents are reclaimed.
func (a *Area) exit() {
	if a.kind != Scoped {
		return
	}
	a.mu.Lock()
	a.refcount--
	var fins []func()
	if a.refcount == 0 {
		fins = a.finalizers
		a.finalizers = nil
		a.consumed = 0
		a.parent = nil
		a.portal = nil
		a.gen++
	}
	a.mu.Unlock()
	// Finalizers run outside the lock, in registration order, as the
	// scope's reclamation action.
	for _, fn := range fins {
		fn()
	}
}

// IsAncestorOf reports whether a is t or an ancestor (outer scope) of
// t through the established parent chain. Heap and immortal areas are
// treated as roots: they are "outer" to every scope.
func (a *Area) IsAncestorOf(t *Area) bool { return a.isAncestorOf(t) }

// isAncestorOf implements IsAncestorOf.
func (a *Area) isAncestorOf(t *Area) bool {
	if a.kind != Scoped {
		return true
	}
	for s := t; s != nil; {
		if s == a {
			return true
		}
		if s.kind != Scoped {
			return false
		}
		s.mu.Lock()
		p := s.parent
		s.mu.Unlock()
		s = p
	}
	return false
}

// SetPortal publishes r as the scope's portal object. RTSJ requires
// the portal object to be allocated in the scope itself; publishing
// from an inactive scope or a foreign object is refused.
func (a *Area) SetPortal(r *Ref) error {
	if a.kind != Scoped {
		return &PortalError{Scope: a.name, Reason: "portals exist only on scoped areas"}
	}
	if r != nil && r.area != a {
		return &PortalError{Scope: a.name, Reason: fmt.Sprintf("portal object allocated in %s, must be allocated in the scope itself", r.area.name)}
	}
	a.mu.Lock()
	defer a.mu.Unlock()
	if a.refcount == 0 {
		return &InactiveScopeError{Scope: a.name, Op: "SetPortal"}
	}
	a.portal = r
	return nil
}

// Portal returns the scope's portal object, or nil if unset. Reading
// the portal of an inactive scope is refused.
func (a *Area) Portal() (*Ref, error) {
	if a.kind != Scoped {
		return nil, &PortalError{Scope: a.name, Reason: "portals exist only on scoped areas"}
	}
	a.mu.Lock()
	defer a.mu.Unlock()
	if a.refcount == 0 {
		return nil, &InactiveScopeError{Scope: a.name, Op: "Portal"}
	}
	return a.portal, nil
}

// CheckAssign validates storing a reference to an object in value-area
// v into an object held in target-area t, per the RTSJ assignment
// rules:
//
//   - heap and immortal objects may reference heap and immortal
//     objects, never scoped ones;
//   - a scoped object may reference heap, immortal, and objects in the
//     same scope or an outer (ancestor) scope.
func CheckAssign(t, v *Area) error {
	if v == nil {
		return nil
	}
	if t == nil {
		return fmt.Errorf("memory: assignment target area is nil")
	}
	if v.kind != Scoped {
		return nil
	}
	switch t.kind {
	case Heap, Immortal:
		return &IllegalAssignmentError{
			Target: t.name, Value: v.name,
			Reason: "scoped references may not escape to heap or immortal memory",
		}
	case Scoped:
		if v.isAncestorOf(t) {
			return nil
		}
		return &IllegalAssignmentError{
			Target: t.name, Value: v.name,
			Reason: "referenced scope is not the same scope or an outer scope of the target",
		}
	default:
		return fmt.Errorf("memory: unknown target kind %v", t.kind)
	}
}
