package memory

import "fmt"

// IllegalAssignmentError reports a reference store that violates the
// RTSJ assignment rules (e.g. storing a reference to a scoped object
// into the heap, or into a non-ancestor scope).
type IllegalAssignmentError struct {
	Target string // area holding the object being written
	Value  string // area of the referenced object
	Reason string
}

func (e *IllegalAssignmentError) Error() string {
	return fmt.Sprintf("memory: illegal assignment of %s reference into %s object: %s",
		e.Value, e.Target, e.Reason)
}

// ScopedCycleError reports a violation of the single parent rule: a
// scoped memory was entered from an allocation context whose current
// area differs from the scope's established parent.
type ScopedCycleError struct {
	Scope      string
	Parent     string // established parent
	EnteredVia string // current area at the offending entry
}

func (e *ScopedCycleError) Error() string {
	return fmt.Sprintf("memory: single parent rule violated for scope %s: parent is %s, entered via %s",
		e.Scope, e.Parent, e.EnteredVia)
}

// MemoryAccessError reports an operation forbidden to no-heap contexts:
// entering or allocating in heap memory, or loading a heap reference.
type MemoryAccessError struct {
	Op   string
	Area string
}

func (e *MemoryAccessError) Error() string {
	return fmt.Sprintf("memory: no-heap context may not %s %s memory", e.Op, e.Area)
}

// OutOfMemoryError reports that an allocation would exceed an area's
// configured size.
type OutOfMemoryError struct {
	Area      string
	Size      int64 // configured size
	Consumed  int64
	Requested int64
}

func (e *OutOfMemoryError) Error() string {
	return fmt.Sprintf("memory: area %s exhausted: size %d, consumed %d, requested %d",
		e.Area, e.Size, e.Consumed, e.Requested)
}

// InactiveScopeError reports use of a scoped area (or of a reference
// allocated in it) after its reference count dropped to zero and its
// contents were reclaimed, or before any thread entered it.
type InactiveScopeError struct {
	Scope string
	Op    string
}

func (e *InactiveScopeError) Error() string {
	return fmt.Sprintf("memory: %s on inactive scope %s", e.Op, e.Scope)
}

// PortalError reports an invalid portal operation, such as setting a
// portal to an object not allocated in the scope itself.
type PortalError struct {
	Scope  string
	Reason string
}

func (e *PortalError) Error() string {
	return fmt.Sprintf("memory: portal of %s: %s", e.Scope, e.Reason)
}
