package memory

import (
	"errors"
	"math/rand"
	"testing"
	"testing/quick"
)

// --- assignment-rule matrix -------------------------------------------------

func TestAssignmentRuleMatrix(t *testing.T) {
	rt := newTestRuntime(t)
	outer := mustScope(t, rt, "outer", 4096)
	inner := mustScope(t, rt, "inner", 4096)
	sibling := mustScope(t, rt, "sibling", 4096)

	c := mustContext(t, rt.Immortal(), false)
	ch := mustContext(t, rt.Heap(), false)

	heapObj, err := ch.Alloc(8, "heap")
	if err != nil {
		t.Fatal(err)
	}
	immObj, err := c.Alloc(8, "imm")
	if err != nil {
		t.Fatal(err)
	}

	err = c.Enter(outer, func() error {
		outerObj, err := c.Alloc(8, "outer")
		if err != nil {
			return err
		}
		return c.Enter(inner, func() error {
			innerObj, err := c.Alloc(8, "inner")
			if err != nil {
				return err
			}

			// Legal: scoped object referencing heap, immortal, same
			// scope, and outer scope.
			for name, v := range map[string]*Ref{
				"toHeap": heapObj, "toImm": immObj, "toSelf": innerObj, "toOuter": outerObj,
			} {
				if err := innerObj.SetField(name, v); err != nil {
					t.Errorf("inner.%s: unexpected error %v", name, err)
				}
			}

			// Illegal: outer scope referencing inner scope.
			var illegal *IllegalAssignmentError
			if err := outerObj.SetField("down", innerObj); !errors.As(err, &illegal) {
				t.Errorf("outer->inner: %v, want IllegalAssignmentError", err)
			}
			// Illegal: heap / immortal referencing scoped.
			if err := heapObj.SetField("s", innerObj); !errors.As(err, &illegal) {
				t.Errorf("heap->scoped: %v, want IllegalAssignmentError", err)
			}
			if err := immObj.SetField("s", outerObj); !errors.As(err, &illegal) {
				t.Errorf("immortal->scoped: %v, want IllegalAssignmentError", err)
			}
			// Legal: heap <-> immortal, in both directions.
			if err := heapObj.SetField("i", immObj); err != nil {
				t.Errorf("heap->immortal: %v", err)
			}
			if err := immObj.SetField("h", heapObj); err != nil {
				t.Errorf("immortal->heap: %v", err)
			}

			// Illegal: sibling scope (not an ancestor).
			return c.Enter(sibling, func() error {
				// sibling's parent is inner; an object in inner may not
				// reference sibling (sibling is not inner's ancestor).
				sibObj, err := c.Alloc(8, "sib")
				if err != nil {
					return err
				}
				if err := innerObj.SetField("sib", sibObj); !errors.As(err, &illegal) {
					t.Errorf("inner->sibling-child: %v, want IllegalAssignmentError", err)
				}
				// sibling may reference inner (its parent).
				if err := sibObj.SetField("up", innerObj); err != nil {
					t.Errorf("sibling-child->inner: %v", err)
				}
				return nil
			})
		})
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestSetFieldNilClears(t *testing.T) {
	rt := newTestRuntime(t)
	c := mustContext(t, rt.Immortal(), false)
	a, _ := c.Alloc(8, nil)
	b, _ := c.Alloc(8, nil)
	if err := a.SetField("x", b); err != nil {
		t.Fatal(err)
	}
	if got := a.FieldNames(); len(got) != 1 || got[0] != "x" {
		t.Fatalf("FieldNames = %v", got)
	}
	if err := a.SetField("x", nil); err != nil {
		t.Fatal(err)
	}
	if f, _ := a.Field("x"); f != nil {
		t.Fatal("field not cleared")
	}
}

func TestSetFieldOnDanglingRefused(t *testing.T) {
	rt := newTestRuntime(t)
	s := mustScope(t, rt, "s", 256)
	c := mustContext(t, rt.Immortal(), false)
	var stale *Ref
	if err := c.Enter(s, func() error {
		var err error
		stale, err = c.Alloc(8, nil)
		return err
	}); err != nil {
		t.Fatal(err)
	}
	imm, _ := c.Alloc(8, nil)
	var inactive *InactiveScopeError
	if err := stale.SetField("x", imm); !errors.As(err, &inactive) {
		t.Fatalf("store on dangling: %v", err)
	}
	if err := imm.SetField("x", stale); !errors.As(err, &inactive) {
		t.Fatalf("store of dangling: %v", err)
	}
	if _, err := stale.Field("x"); !errors.As(err, &inactive) {
		t.Fatalf("load on dangling: %v", err)
	}
}

// --- no-heap (NHRT) restrictions ---------------------------------------------

func TestNoHeapContextRestrictions(t *testing.T) {
	rt := newTestRuntime(t)
	s := mustScope(t, rt, "s", 256)

	if _, err := NewContext(rt.Heap(), true); err == nil {
		t.Fatal("no-heap context started in heap")
	}

	c := mustContext(t, rt.Immortal(), true)
	var access *MemoryAccessError

	if err := c.Enter(rt.Heap(), func() error { return nil }); !errors.As(err, &access) {
		t.Fatalf("enter heap: %v", err)
	}
	if err := c.ExecuteInArea(rt.Heap(), func() error { return nil }); !errors.As(err, &access) {
		t.Fatalf("executeInArea heap: %v", err)
	}
	if _, err := c.AllocIn(rt.Heap(), 8, nil); !errors.As(err, &access) {
		t.Fatalf("alloc in heap: %v", err)
	}

	// Reading a heap reference faults.
	ch := mustContext(t, rt.Heap(), false)
	heapObj, err := ch.Alloc(8, "h")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := c.Load(heapObj); !errors.As(err, &access) {
		t.Fatalf("load heap ref: %v", err)
	}
	if err := c.Store(heapObj, 1); !errors.As(err, &access) {
		t.Fatalf("store heap ref: %v", err)
	}

	// LoadField faults when the loaded reference points into heap.
	immObj, err := c.Alloc(8, "i")
	if err != nil {
		t.Fatal(err)
	}
	if err := immObj.SetField("h", heapObj); err != nil {
		t.Fatal(err)
	}
	if _, err := c.LoadField(immObj, "h"); !errors.As(err, &access) {
		t.Fatalf("LoadField heap ref: %v", err)
	}

	// Scoped and immortal work normally for no-heap contexts.
	if err := c.Enter(s, func() error {
		_, err := c.Alloc(8, nil)
		return err
	}); err != nil {
		t.Fatalf("no-heap scope use: %v", err)
	}
}

// --- executeInArea -----------------------------------------------------------

func TestExecuteInArea(t *testing.T) {
	rt := newTestRuntime(t)
	outer := mustScope(t, rt, "outer", 256)
	other := mustScope(t, rt, "other", 256)
	c := mustContext(t, rt.Immortal(), false)

	err := c.Enter(outer, func() error {
		// Allocation lands in the executed-in area, not the current one.
		if err := c.ExecuteInArea(rt.Immortal(), func() error {
			r, err := c.Alloc(24, nil)
			if err != nil {
				return err
			}
			if r.Area() != rt.Immortal() {
				t.Errorf("allocated in %s", r.Area().Name())
			}
			return nil
		}); err != nil {
			return err
		}
		if outer.Consumed() != 0 {
			t.Errorf("outer consumed %d", outer.Consumed())
		}
		// Executing in a scope not on the stack is refused.
		var inactive *InactiveScopeError
		if err := c.ExecuteInArea(other, func() error { return nil }); !errors.As(err, &inactive) {
			t.Errorf("executeInArea foreign scope: %v", err)
		}
		// Executing in a scope that IS on the stack works.
		return c.ExecuteInArea(outer, func() error { return nil })
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestAllocInOuterScope(t *testing.T) {
	rt := newTestRuntime(t)
	outer := mustScope(t, rt, "outer", 256)
	inner := mustScope(t, rt, "inner", 256)
	c := mustContext(t, rt.Immortal(), false)
	err := c.Enter(outer, func() error {
		return c.Enter(inner, func() error {
			r, err := c.AllocIn(outer, 16, nil)
			if err != nil {
				return err
			}
			if r.Area() != outer {
				t.Errorf("allocated in %s", r.Area().Name())
			}
			return nil
		})
	})
	if err != nil {
		t.Fatal(err)
	}
	if outer.Consumed() != 0 {
		t.Fatal("outer not reclaimed")
	}
}

// --- portals ------------------------------------------------------------------

func TestPortal(t *testing.T) {
	rt := newTestRuntime(t)
	s := mustScope(t, rt, "s", 256)
	c := mustContext(t, rt.Immortal(), false)

	immObj, err := c.Alloc(8, nil)
	if err != nil {
		t.Fatal(err)
	}
	err = c.Enter(s, func() error {
		obj, err := c.Alloc(8, "portal")
		if err != nil {
			return err
		}
		var perr *PortalError
		if err := s.SetPortal(immObj); !errors.As(err, &perr) {
			t.Errorf("foreign portal: %v", err)
		}
		if err := s.SetPortal(obj); err != nil {
			return err
		}
		got, err := s.Portal()
		if err != nil {
			return err
		}
		if got != obj {
			t.Error("portal mismatch")
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	// Portal cleared on reclamation; inactive access refused.
	var inactive *InactiveScopeError
	if _, err := s.Portal(); !errors.As(err, &inactive) {
		t.Fatalf("portal of inactive scope: %v", err)
	}
	var perr *PortalError
	if _, err := rt.Heap().Portal(); !errors.As(err, &perr) {
		t.Fatalf("portal of heap: %v", err)
	}
}

// --- property tests -----------------------------------------------------------

// Property: for a random chain of nested scopes, CheckAssign permits a
// store into scope i of a reference in scope j iff j <= i (outer or
// same), and always permits heap/immortal values.
func TestCheckAssignChainProperty(t *testing.T) {
	f := func(depth8 uint8, iRaw, jRaw uint16) bool {
		depth := int(depth8%6) + 1
		rt := NewRuntime()
		c, err := NewContext(rt.Immortal(), false)
		if err != nil {
			return false
		}
		defer c.Close()
		chain := make([]*Area, depth)
		ok := true
		var build func(k int) error
		build = func(k int) error {
			if k == depth {
				i, j := int(iRaw)%depth, int(jRaw)%depth
				err := CheckAssign(chain[i], chain[j])
				if (j <= i) != (err == nil) {
					ok = false
				}
				if err := CheckAssign(chain[i], rt.Heap()); err != nil {
					ok = false
				}
				if err := CheckAssign(chain[i], rt.Immortal()); err != nil {
					ok = false
				}
				if err := CheckAssign(rt.Heap(), chain[i]); err == nil {
					ok = false
				}
				return nil
			}
			a, err := rt.NewScoped(string(rune('a'+k)), 64)
			if err != nil {
				return err
			}
			chain[k] = a
			return c.Enter(a, func() error { return build(k + 1) })
		}
		if err := build(0); err != nil {
			return false
		}
		return ok
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

// Property: consumed bytes never exceed size, and reclamation always
// returns consumption to zero, across random allocation sequences.
func TestScopeBudgetProperty(t *testing.T) {
	f := func(seed int64, n8 uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		rt := NewRuntime()
		s, err := rt.NewScoped("s", 1024)
		if err != nil {
			return false
		}
		c, err := NewContext(rt.Immortal(), false)
		if err != nil {
			return false
		}
		defer c.Close()
		n := int(n8%40) + 1
		err = c.Enter(s, func() error {
			for i := 0; i < n; i++ {
				size := int64(rng.Intn(200))
				_, err := c.Alloc(size, nil)
				if err != nil {
					var oom *OutOfMemoryError
					if !errors.As(err, &oom) {
						return err
					}
				}
				if s.Consumed() > s.Size() {
					return errors.New("budget exceeded")
				}
			}
			return nil
		})
		return err == nil && s.Consumed() == 0
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 80}); err != nil {
		t.Fatal(err)
	}
}

// Property: Enter/exit sequences leave the context stack balanced.
func TestContextStackBalancedProperty(t *testing.T) {
	f := func(script []bool) bool {
		rt := NewRuntime()
		c, err := NewContext(rt.Immortal(), false)
		if err != nil {
			return false
		}
		defer c.Close()
		depth0 := c.Depth()
		var run func(i int) error
		run = func(i int) error {
			if i >= len(script) || i > 5 {
				return nil
			}
			a, err := rt.NewScoped(string(rune('A'+i)), 64)
			if err != nil {
				return err
			}
			if script[i] {
				return c.Enter(a, func() error { return run(i + 1) })
			}
			return run(i + 1)
		}
		if err := run(0); err != nil {
			return false
		}
		return c.Depth() == depth0
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}
