package memory

import (
	"errors"
	"sync"
	"testing"
)

func newTestRuntime(t *testing.T) *Runtime {
	t.Helper()
	return NewRuntime(WithImmortalSize(1 << 20))
}

func mustScope(t *testing.T, rt *Runtime, name string, size int64) *Area {
	t.Helper()
	a, err := rt.NewScoped(name, size)
	if err != nil {
		t.Fatalf("NewScoped(%q): %v", name, err)
	}
	return a
}

func mustContext(t *testing.T, initial *Area, noHeap bool) *Context {
	t.Helper()
	c, err := NewContext(initial, noHeap)
	if err != nil {
		t.Fatalf("NewContext: %v", err)
	}
	t.Cleanup(c.Close)
	return c
}

func TestRuntimeSingletons(t *testing.T) {
	rt := newTestRuntime(t)
	if rt.Heap().Kind() != Heap {
		t.Fatalf("heap kind = %v", rt.Heap().Kind())
	}
	if rt.Immortal().Kind() != Immortal {
		t.Fatalf("immortal kind = %v", rt.Immortal().Kind())
	}
	if got := rt.Immortal().Size(); got != 1<<20 {
		t.Fatalf("immortal size = %d", got)
	}
}

func TestNewScopedValidation(t *testing.T) {
	rt := newTestRuntime(t)
	if _, err := rt.NewScoped("", 10); err == nil {
		t.Fatal("empty name accepted")
	}
	if _, err := rt.NewScoped("s", 0); err == nil {
		t.Fatal("zero size accepted")
	}
	mustScope(t, rt, "s", 10)
	if _, err := rt.NewScoped("s", 10); err == nil {
		t.Fatal("duplicate name accepted")
	}
	if a, ok := rt.Scope("s"); !ok || a.Name() != "s" {
		t.Fatal("Scope lookup failed")
	}
	if _, ok := rt.Scope("missing"); ok {
		t.Fatal("missing scope reported present")
	}
}

func TestAreasOrdering(t *testing.T) {
	rt := newTestRuntime(t)
	mustScope(t, rt, "b", 10)
	mustScope(t, rt, "a", 10)
	areas := rt.Areas()
	if len(areas) != 4 {
		t.Fatalf("len(areas) = %d", len(areas))
	}
	want := []string{"heap", "immortal", "a", "b"}
	for i, a := range areas {
		if a.Name() != want[i] {
			t.Fatalf("areas[%d] = %s, want %s", i, a.Name(), want[i])
		}
	}
}

func TestKindString(t *testing.T) {
	cases := map[Kind]string{Heap: "heap", Immortal: "immortal", Scoped: "scope", Kind(9): "Kind(9)"}
	for k, want := range cases {
		if got := k.String(); got != want {
			t.Errorf("Kind(%d).String() = %q, want %q", int(k), got, want)
		}
	}
}

func TestAllocAccounting(t *testing.T) {
	rt := newTestRuntime(t)
	c := mustContext(t, rt.Immortal(), false)
	if _, err := c.Alloc(100, "x"); err != nil {
		t.Fatalf("Alloc: %v", err)
	}
	if got := rt.Immortal().Consumed(); got != 100 {
		t.Fatalf("Consumed = %d", got)
	}
	if got := rt.Immortal().Peak(); got != 100 {
		t.Fatalf("Peak = %d", got)
	}
	if got := rt.Immortal().Allocations(); got != 1 {
		t.Fatalf("Allocations = %d", got)
	}
}

func TestAllocNegativeSize(t *testing.T) {
	rt := newTestRuntime(t)
	c := mustContext(t, rt.Heap(), false)
	if _, err := c.Alloc(-1, nil); err == nil {
		t.Fatal("negative allocation accepted")
	}
}

func TestOutOfMemory(t *testing.T) {
	rt := newTestRuntime(t)
	s := mustScope(t, rt, "s", 64)
	c := mustContext(t, rt.Immortal(), false)
	err := c.Enter(s, func() error {
		if _, err := c.Alloc(60, nil); err != nil {
			return err
		}
		_, err := c.Alloc(8, nil)
		return err
	})
	var oom *OutOfMemoryError
	if !errors.As(err, &oom) {
		t.Fatalf("err = %v, want OutOfMemoryError", err)
	}
	if oom.Area != "s" || oom.Size != 64 || oom.Consumed != 60 || oom.Requested != 8 {
		t.Fatalf("oom detail = %+v", oom)
	}
}

func TestScopedAllocationRequiresActive(t *testing.T) {
	rt := newTestRuntime(t)
	s := mustScope(t, rt, "s", 64)
	if _, err := s.alloc(8); err == nil {
		t.Fatal("allocation in inactive scope accepted")
	}
}

func TestEnterReclaimsScope(t *testing.T) {
	rt := newTestRuntime(t)
	s := mustScope(t, rt, "s", 1024)
	c := mustContext(t, rt.Immortal(), false)

	var inScope *Ref
	err := c.Enter(s, func() error {
		var err error
		inScope, err = c.Alloc(16, "payload")
		return err
	})
	if err != nil {
		t.Fatalf("Enter: %v", err)
	}
	if s.Consumed() != 0 {
		t.Fatalf("scope not reclaimed: consumed %d", s.Consumed())
	}
	if s.Active() {
		t.Fatal("scope still active after exit")
	}
	if inScope.Live() {
		t.Fatal("reference into reclaimed scope still live")
	}
	if _, err := c.Load(inScope); err == nil {
		t.Fatal("load through dangling reference succeeded")
	}
}

func TestScopeGenerationDistinguishesIncarnations(t *testing.T) {
	rt := newTestRuntime(t)
	s := mustScope(t, rt, "s", 1024)
	c := mustContext(t, rt.Immortal(), false)

	var first *Ref
	if err := c.Enter(s, func() error {
		var err error
		first, err = c.Alloc(8, 1)
		return err
	}); err != nil {
		t.Fatal(err)
	}
	if err := c.Enter(s, func() error {
		second, err := c.Alloc(8, 2)
		if err != nil {
			return err
		}
		if !second.Live() {
			t.Error("fresh allocation not live")
		}
		if first.Live() {
			t.Error("previous incarnation's object is live in new incarnation")
		}
		return nil
	}); err != nil {
		t.Fatal(err)
	}
}

func TestSingleParentRule(t *testing.T) {
	rt := newTestRuntime(t)
	s := mustScope(t, rt, "s", 1024)
	other := mustScope(t, rt, "other", 1024)

	c1 := mustContext(t, rt.Immortal(), false)
	block := make(chan struct{})
	entered := make(chan struct{})
	done := make(chan error, 1)
	go func() {
		c2, err := NewContext(rt.Heap(), false)
		if err != nil {
			done <- err
			return
		}
		defer c2.Close()
		done <- c2.Enter(s, func() error {
			close(entered)
			<-block
			return nil
		})
	}()
	<-entered
	// s's parent is now heap; entering from immortal must fail.
	err := c1.Enter(s, func() error { return nil })
	var cyc *ScopedCycleError
	if !errors.As(err, &cyc) {
		t.Fatalf("err = %v, want ScopedCycleError", err)
	}
	// Entering via a different scope also fails.
	err = c1.Enter(other, func() error {
		return c1.Enter(s, func() error { return nil })
	})
	if !errors.As(err, &cyc) {
		t.Fatalf("nested err = %v, want ScopedCycleError", err)
	}
	close(block)
	if err := <-done; err != nil {
		t.Fatalf("holder enter: %v", err)
	}
	// After reclamation the parent resets and entry from immortal works.
	if err := c1.Enter(s, func() error { return nil }); err != nil {
		t.Fatalf("re-enter after reset: %v", err)
	}
}

func TestReentrySameParentAllowed(t *testing.T) {
	rt := newTestRuntime(t)
	s := mustScope(t, rt, "s", 1024)
	c := mustContext(t, rt.Immortal(), false)
	err := c.Enter(s, func() error {
		// From inside s, the current area is s, not s's parent, so a
		// direct nested re-entry violates the single parent rule.
		err := c.Enter(s, func() error { return nil })
		var cyc *ScopedCycleError
		if !errors.As(err, &cyc) {
			t.Errorf("nested self-enter: %v, want ScopedCycleError", err)
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestNestedScopes(t *testing.T) {
	rt := newTestRuntime(t)
	outer := mustScope(t, rt, "outer", 1024)
	inner := mustScope(t, rt, "inner", 1024)
	c := mustContext(t, rt.Immortal(), false)
	err := c.Enter(outer, func() error {
		return c.Enter(inner, func() error {
			if inner.Parent() != outer {
				t.Errorf("inner parent = %v", inner.Parent())
			}
			if got := c.Depth(); got != 3 {
				t.Errorf("depth = %d, want 3", got)
			}
			if !outer.isAncestorOf(inner) {
				t.Error("outer not ancestor of inner")
			}
			if inner.isAncestorOf(outer) {
				t.Error("inner reported ancestor of outer")
			}
			return nil
		})
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestFinalizersRunOnReclaim(t *testing.T) {
	rt := newTestRuntime(t)
	s := mustScope(t, rt, "s", 1024)
	c := mustContext(t, rt.Immortal(), false)
	var order []int
	err := c.Enter(s, func() error {
		if err := s.AddFinalizer(func() { order = append(order, 1) }); err != nil {
			return err
		}
		return s.AddFinalizer(func() { order = append(order, 2) })
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(order) != 2 || order[0] != 1 || order[1] != 2 {
		t.Fatalf("finalizer order = %v", order)
	}
	// Finalizers do not persist across incarnations.
	order = nil
	if err := c.Enter(s, func() error { return nil }); err != nil {
		t.Fatal(err)
	}
	if len(order) != 0 {
		t.Fatalf("stale finalizers ran: %v", order)
	}
}

func TestFinalizerRestrictions(t *testing.T) {
	rt := newTestRuntime(t)
	if err := rt.Heap().AddFinalizer(func() {}); err == nil {
		t.Fatal("finalizer on heap accepted")
	}
	s := mustScope(t, rt, "s", 64)
	if err := s.AddFinalizer(func() {}); err == nil {
		t.Fatal("finalizer on inactive scope accepted")
	}
}

func TestFreeHeapOnly(t *testing.T) {
	rt := newTestRuntime(t)
	c := mustContext(t, rt.Heap(), false)
	r, err := c.Alloc(32, nil)
	if err != nil {
		t.Fatal(err)
	}
	if err := r.Free(); err != nil {
		t.Fatalf("Free: %v", err)
	}
	if got := rt.Heap().Consumed(); got != 0 {
		t.Fatalf("heap consumed after free = %d", got)
	}
	ci := mustContext(t, rt.Immortal(), false)
	ri, err := ci.Alloc(32, nil)
	if err != nil {
		t.Fatal(err)
	}
	if err := ri.Free(); err == nil {
		t.Fatal("free of immortal object accepted")
	}
}

func TestFootprint(t *testing.T) {
	rt := newTestRuntime(t)
	s := mustScope(t, rt, "s", 512)
	c := mustContext(t, rt.Immortal(), false)
	if _, err := c.Alloc(100, nil); err != nil {
		t.Fatal(err)
	}
	ch := mustContext(t, rt.Heap(), false)
	if _, err := ch.Alloc(40, nil); err != nil {
		t.Fatal(err)
	}
	err := c.Enter(s, func() error {
		if _, err := c.Alloc(7, nil); err != nil {
			return err
		}
		f := rt.Footprint()
		if f.ImmortalBytes != 100 || f.HeapBytes != 40 || f.ScopedBytes != 7 {
			t.Errorf("footprint = %+v", f)
		}
		if f.ScopedBudget != 512 {
			t.Errorf("scoped budget = %d", f.ScopedBudget)
		}
		if f.Total() != 147 {
			t.Errorf("total = %d", f.Total())
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestConcurrentAllocations(t *testing.T) {
	rt := newTestRuntime(t)
	const workers, per = 8, 500
	var wg sync.WaitGroup
	for i := 0; i < workers; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			c, err := NewContext(rt.Heap(), false)
			if err != nil {
				t.Error(err)
				return
			}
			defer c.Close()
			for j := 0; j < per; j++ {
				if _, err := c.Alloc(2, nil); err != nil {
					t.Error(err)
					return
				}
			}
		}()
	}
	wg.Wait()
	if got := rt.Heap().Consumed(); got != workers*per*2 {
		t.Fatalf("heap consumed = %d, want %d", got, workers*per*2)
	}
}
