package memory

import (
	"fmt"
)

// Context is the allocation context of one thread of control: a stack
// of entered memory areas plus the thread's heap-access permission.
// NoHeapRealtimeThreads run with noHeap contexts, which fault on any
// interaction with heap memory (RTSJ MemoryAccessError).
//
// A Context is owned by a single thread and is not safe for concurrent
// use; the areas it manipulates are.
type Context struct {
	stack  []*Area
	noHeap bool
}

// NewContext creates an allocation context whose initial allocation
// area is initial. A no-heap context may not start in heap memory.
func NewContext(initial *Area, noHeap bool) (*Context, error) {
	if initial == nil {
		return nil, fmt.Errorf("memory: context needs an initial area")
	}
	if noHeap && initial.Kind() == Heap {
		return nil, &MemoryAccessError{Op: "start in", Area: initial.Name()}
	}
	c := &Context{noHeap: noHeap}
	if err := initial.enter(nil); err != nil {
		return nil, err
	}
	c.stack = append(c.stack, initial)
	return c, nil
}

// Close releases the context, leaving every area still on its stack
// (innermost first). After Close the context must not be used.
func (c *Context) Close() {
	for i := len(c.stack) - 1; i >= 0; i-- {
		c.stack[i].exit()
	}
	c.stack = nil
}

// NoHeap reports whether the context forbids heap interaction.
func (c *Context) NoHeap() bool { return c.noHeap }

// Current returns the current allocation area (top of the scope
// stack).
func (c *Context) Current() *Area {
	if len(c.stack) == 0 {
		return nil
	}
	return c.stack[len(c.stack)-1]
}

// Depth returns the number of areas on the scope stack.
func (c *Context) Depth() int { return len(c.stack) }

// Stack returns a copy of the scope stack, outermost first.
func (c *Context) Stack() []*Area {
	out := make([]*Area, len(c.stack))
	copy(out, c.stack)
	return out
}

// OnStack reports whether a is on the context's scope stack.
func (c *Context) OnStack(a *Area) bool {
	for _, s := range c.stack {
		if s == a {
			return true
		}
	}
	return false
}

// Enter pushes a onto the scope stack, runs fn, and pops, enforcing
// the single parent rule for scoped areas and the no-heap restriction.
// Enter mirrors RTSJ's MemoryArea.enter(Runnable): the scope is kept
// alive (reference counted) for the duration of fn and reclaimed when
// the last thread leaves.
func (c *Context) Enter(a *Area, fn func() error) error {
	if a == nil {
		return fmt.Errorf("memory: enter of nil area")
	}
	if c.noHeap && a.Kind() == Heap {
		return &MemoryAccessError{Op: "enter", Area: a.Name()}
	}
	if err := a.enter(c.Current()); err != nil {
		return err
	}
	c.stack = append(c.stack, a)
	defer func() {
		c.stack = c.stack[:len(c.stack)-1]
		a.exit()
	}()
	return fn()
}

// ExecuteInArea runs fn with a as the current allocation area, as
// RTSJ's MemoryArea.executeInArea. Unlike Enter it does not establish
// new scope parentage: the target must be heap, immortal, or a scope
// already on the context's stack (an outer scope).
func (c *Context) ExecuteInArea(a *Area, fn func() error) error {
	if a == nil {
		return fmt.Errorf("memory: executeInArea of nil area")
	}
	if c.noHeap && a.Kind() == Heap {
		return &MemoryAccessError{Op: "execute in", Area: a.Name()}
	}
	if a.Kind() == Scoped && !c.OnStack(a) {
		return &InactiveScopeError{Scope: a.Name(), Op: "executeInArea from a context not inside it"}
	}
	if a.Kind() == Scoped {
		// Keep the scope alive for the duration even though it is
		// already on our stack; entering via the established parent is
		// not required for executeInArea, so bump the count directly.
		a.mu.Lock()
		a.refcount++
		a.mu.Unlock()
		defer a.exit()
	}
	c.stack = append(c.stack, a)
	defer func() { c.stack = c.stack[:len(c.stack)-1] }()
	return fn()
}

// Alloc allocates an object of the given size carrying value v in the
// current allocation area.
func (c *Context) Alloc(size int64, v any) (*Ref, error) {
	return c.AllocIn(c.Current(), size, v)
}

// AllocIn allocates in an explicit area, subject to the same rules as
// ExecuteInArea (no-heap contexts may not allocate in heap; scoped
// targets must be on the context's stack).
func (c *Context) AllocIn(a *Area, size int64, v any) (*Ref, error) {
	if a == nil {
		return nil, fmt.Errorf("memory: allocation in nil area")
	}
	if c.noHeap && a.Kind() == Heap {
		return nil, &MemoryAccessError{Op: "allocate in", Area: a.Name()}
	}
	if a.Kind() == Scoped && !c.OnStack(a) {
		return nil, &InactiveScopeError{Scope: a.Name(), Op: "allocate from a context not inside it"}
	}
	gen, err := a.alloc(size)
	if err != nil {
		return nil, err
	}
	return &Ref{area: a, gen: gen, size: size, value: v}, nil
}

// Load reads the object behind r, enforcing the no-heap read rule and
// dangling-scope detection.
func (c *Context) Load(r *Ref) (any, error) {
	if r == nil {
		return nil, fmt.Errorf("memory: load through nil reference")
	}
	if c.noHeap && r.area.Kind() == Heap {
		return nil, &MemoryAccessError{Op: "read a reference into", Area: r.area.Name()}
	}
	if !r.valid() {
		return nil, &InactiveScopeError{Scope: r.area.Name(), Op: "load of reclaimed object"}
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.value, nil
}

// Store overwrites the object value behind r. The no-heap rule applies
// as for Load; the assignment rules do not (the value is opaque data,
// not a tracked reference — use Ref.SetField for reference stores).
func (c *Context) Store(r *Ref, v any) error {
	if r == nil {
		return fmt.Errorf("memory: store through nil reference")
	}
	if c.noHeap && r.area.Kind() == Heap {
		return &MemoryAccessError{Op: "write through a reference into", Area: r.area.Name()}
	}
	if !r.valid() {
		return &InactiveScopeError{Scope: r.area.Name(), Op: "store to reclaimed object"}
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	r.value = v
	return nil
}
