package memory

import (
	"fmt"
	"sort"
	"sync"
)

// Ref is a handle to an object allocated in a memory area. It carries
// the area and the scope generation it was allocated under, so that
// uses after the scope's reclamation are detected, and it tracks named
// reference fields so that every reference store goes through the RTSJ
// assignment-rule check.
type Ref struct {
	area *Area
	gen  uint64
	size int64

	mu     sync.Mutex
	value  any
	fields map[string]*Ref
}

// Area returns the memory area the object lives in.
func (r *Ref) Area() *Area { return r.area }

// Size returns the byte size charged for the object.
func (r *Ref) Size() int64 { return r.size }

// valid reports whether the object is still live (its scope has not
// been reclaimed since allocation).
func (r *Ref) valid() bool {
	if r.area.Kind() != Scoped {
		return true
	}
	return r.gen == r.area.Generation() && r.area.Active()
}

// Live reports whether the object is still live.
func (r *Ref) Live() bool { return r.valid() }

// SetField stores reference v into the named field of the object,
// enforcing the RTSJ assignment rules: the store is refused if it
// would let a scoped reference escape to heap/immortal memory or to a
// non-ancestor scope. Storing nil clears the field.
func (r *Ref) SetField(name string, v *Ref) error {
	if !r.valid() {
		return &InactiveScopeError{Scope: r.area.Name(), Op: "field store on reclaimed object"}
	}
	if v != nil {
		if !v.valid() {
			return &InactiveScopeError{Scope: v.area.Name(), Op: "field store of reclaimed object"}
		}
		if err := CheckAssign(r.area, v.area); err != nil {
			return err
		}
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if v == nil {
		delete(r.fields, name)
		return nil
	}
	if r.fields == nil {
		r.fields = make(map[string]*Ref)
	}
	r.fields[name] = v
	return nil
}

// Field loads the named reference field. Loading through a no-heap
// context must go via Context.LoadField; Field itself only checks
// liveness.
func (r *Ref) Field(name string) (*Ref, error) {
	if !r.valid() {
		return nil, &InactiveScopeError{Scope: r.area.Name(), Op: "field load on reclaimed object"}
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.fields[name], nil
}

// FieldNames returns the names of the currently set reference fields,
// sorted.
func (r *Ref) FieldNames() []string {
	r.mu.Lock()
	defer r.mu.Unlock()
	names := make([]string, 0, len(r.fields))
	for n := range r.fields {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}

// Free releases the object's bytes back to its area. Only heap objects
// are individually freeable; scoped memory is reclaimed wholesale and
// immortal memory never.
func (r *Ref) Free() error {
	if r.area.Kind() != Heap {
		return fmt.Errorf("memory: cannot free individual objects in %s memory", r.area.Kind())
	}
	r.area.free(r.size)
	return nil
}

// LoadField loads the named reference field of r under the context's
// access rules: a no-heap context faults when the loaded reference
// points into the heap.
func (c *Context) LoadField(r *Ref, name string) (*Ref, error) {
	if r == nil {
		return nil, fmt.Errorf("memory: field load through nil reference")
	}
	f, err := r.Field(name)
	if err != nil {
		return nil, err
	}
	if f != nil && c.noHeap && f.area.Kind() == Heap {
		return nil, &MemoryAccessError{Op: "load a reference into", Area: f.area.Name()}
	}
	return f, nil
}
