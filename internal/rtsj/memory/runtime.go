package memory

import (
	"fmt"
	"sort"
	"sync"
)

// Runtime owns the memory areas of one simulated RTSJ virtual machine:
// the singleton heap and immortal areas plus any number of named
// scoped areas.
type Runtime struct {
	heap     *Area
	immortal *Area

	mu     sync.Mutex
	scopes map[string]*Area
}

// Option configures a Runtime.
type Option func(*config)

type config struct {
	immortalSize int64
	heapSize     int64
}

// WithImmortalSize bounds the immortal area to size bytes (the paper's
// ADL gives immortal memory an explicit budget, e.g. 600 KB).
func WithImmortalSize(size int64) Option {
	return func(c *config) { c.immortalSize = size }
}

// WithHeapSize bounds the heap to size bytes; 0 (the default) leaves
// it unbounded.
func WithHeapSize(size int64) Option {
	return func(c *config) { c.heapSize = size }
}

// NewRuntime creates a memory runtime with fresh heap and immortal
// areas.
func NewRuntime(opts ...Option) *Runtime {
	var cfg config
	for _, opt := range opts {
		opt(&cfg)
	}
	return &Runtime{
		heap:     &Area{name: "heap", kind: Heap, size: cfg.heapSize},
		immortal: &Area{name: "immortal", kind: Immortal, size: cfg.immortalSize},
		scopes:   make(map[string]*Area),
	}
}

// Heap returns the runtime's heap area.
func (rt *Runtime) Heap() *Area { return rt.heap }

// Immortal returns the runtime's immortal area.
func (rt *Runtime) Immortal() *Area { return rt.immortal }

// NewScoped creates and registers a named scoped area of the given
// size in bytes. Scope names are unique within a runtime.
func (rt *Runtime) NewScoped(name string, size int64) (*Area, error) {
	if name == "" {
		return nil, fmt.Errorf("memory: scoped area needs a name")
	}
	if size <= 0 {
		return nil, fmt.Errorf("memory: scoped area %q needs a positive size, got %d", name, size)
	}
	rt.mu.Lock()
	defer rt.mu.Unlock()
	if _, dup := rt.scopes[name]; dup {
		return nil, fmt.Errorf("memory: scoped area %q already exists", name)
	}
	a := &Area{name: name, kind: Scoped, size: size}
	rt.scopes[name] = a
	return a, nil
}

// Scope returns the named scoped area.
func (rt *Runtime) Scope(name string) (*Area, bool) {
	rt.mu.Lock()
	defer rt.mu.Unlock()
	a, ok := rt.scopes[name]
	return a, ok
}

// Areas returns every area of the runtime — heap, immortal, then the
// scopes sorted by name.
func (rt *Runtime) Areas() []*Area {
	rt.mu.Lock()
	defer rt.mu.Unlock()
	out := make([]*Area, 0, 2+len(rt.scopes))
	out = append(out, rt.heap, rt.immortal)
	names := make([]string, 0, len(rt.scopes))
	for n := range rt.scopes {
		names = append(names, n)
	}
	sort.Strings(names)
	for _, n := range names {
		out = append(out, rt.scopes[n])
	}
	return out
}

// Footprint summarizes current memory consumption across all areas.
type Footprint struct {
	ImmortalBytes int64
	HeapBytes     int64
	ScopedBytes   int64 // sum of currently consumed scoped bytes
	ScopedBudget  int64 // sum of configured scope sizes
	Allocations   int64 // lifetime allocation count
}

// Total returns the live bytes across all areas.
func (f Footprint) Total() int64 { return f.ImmortalBytes + f.HeapBytes + f.ScopedBytes }

// Footprint reports the runtime's current consumption.
func (rt *Runtime) Footprint() Footprint {
	var f Footprint
	for _, a := range rt.Areas() {
		switch a.Kind() {
		case Heap:
			f.HeapBytes += a.Consumed()
		case Immortal:
			f.ImmortalBytes += a.Consumed()
		case Scoped:
			f.ScopedBytes += a.Consumed()
			f.ScopedBudget += a.Size()
		}
		f.Allocations += a.Allocations()
	}
	return f
}
