package thread

import (
	"errors"
	"testing"
	"time"

	"soleil/internal/rtsj/memory"
	"soleil/internal/rtsj/sched"
)

const ms = time.Millisecond

func newRuntime() *Runtime {
	return NewRuntime(sched.New(), memory.NewRuntime())
}

func TestKindStringsRoundTrip(t *testing.T) {
	for _, k := range []Kind{Regular, Realtime, NoHeap} {
		got, err := ParseKind(k.String())
		if err != nil || got != k {
			t.Errorf("ParseKind(%q) = %v, %v", k.String(), got, err)
		}
	}
	if _, err := ParseKind("bogus"); err == nil {
		t.Error("bogus kind parsed")
	}
}

func TestSpawnValidation(t *testing.T) {
	r := newRuntime()
	run := func(*Env) {}
	cases := []struct {
		name string
		cfg  Config
	}{
		{"no body", Config{Name: "t", Kind: Regular, Priority: 5,
			Release: sched.Release{Kind: sched.Aperiodic}, InitialArea: r.Memory().Heap()}},
		{"no area", Config{Name: "t", Kind: Regular, Priority: 5,
			Release: sched.Release{Kind: sched.Aperiodic}, Run: run}},
		{"regular with RT priority", Config{Name: "t", Kind: Regular, Priority: 20,
			Release: sched.Release{Kind: sched.Aperiodic}, InitialArea: r.Memory().Heap(), Run: run}},
		{"RT with regular priority", Config{Name: "t", Kind: Realtime, Priority: 5,
			Release: sched.Release{Kind: sched.Aperiodic}, InitialArea: r.Memory().Heap(), Run: run}},
		{"NHRT with regular priority", Config{Name: "t", Kind: NoHeap, Priority: 5,
			Release: sched.Release{Kind: sched.Aperiodic}, InitialArea: r.Memory().Immortal(), Run: run}},
		{"NHRT starting in heap", Config{Name: "t", Kind: NoHeap, Priority: 20,
			Release: sched.Release{Kind: sched.Aperiodic}, InitialArea: r.Memory().Heap(), Run: run}},
		{"unknown kind", Config{Name: "t", Kind: Kind(99), Priority: 5,
			Release: sched.Release{Kind: sched.Aperiodic}, InitialArea: r.Memory().Heap(), Run: run}},
	}
	for _, c := range cases {
		if _, err := r.Spawn(c.cfg); err == nil {
			t.Errorf("%s: accepted", c.name)
		}
	}
}

func TestNHRTRules(t *testing.T) {
	r := newRuntime()
	var loadErr error
	heapCtx, err := memory.NewContext(r.Memory().Heap(), false)
	if err != nil {
		t.Fatal(err)
	}
	defer heapCtx.Close()
	heapObj, err := heapCtx.Alloc(8, "x")
	if err != nil {
		t.Fatal(err)
	}
	th, err := r.Spawn(Config{
		Name: "nhrt", Kind: NoHeap, Priority: 30,
		Release:     sched.Release{Kind: sched.Aperiodic},
		InitialArea: r.Memory().Immortal(),
		Run: func(e *Env) {
			if !e.Mem().NoHeap() {
				t.Error("NHRT context allows heap")
			}
			_, loadErr = e.Mem().Load(heapObj)
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := r.Scheduler().Run(10 * ms); err != nil {
		t.Fatal(err)
	}
	if th.Err() != nil {
		t.Fatalf("thread error: %v", th.Err())
	}
	var access *memory.MemoryAccessError
	if !errors.As(loadErr, &access) {
		t.Fatalf("heap load from NHRT: %v, want MemoryAccessError", loadErr)
	}
}

func TestPeriodicNHRTInScope(t *testing.T) {
	r := newRuntime()
	scope, err := r.Memory().NewScoped("work", 4096)
	if err != nil {
		t.Fatal(err)
	}
	var iterations int
	th, err := r.Spawn(Config{
		Name: "p", Kind: NoHeap, Priority: 30,
		Release:     sched.Release{Kind: sched.Periodic, Period: 10 * ms},
		InitialArea: r.Memory().Immortal(),
		Run: func(e *Env) {
			for {
				err := e.Mem().Enter(scope, func() error {
					_, err := e.Mem().Alloc(128, nil)
					return err
				})
				if err != nil {
					t.Errorf("scope enter: %v", err)
					return
				}
				iterations++
				if err := e.Sched().Consume(ms); err != nil {
					return
				}
				if !e.Sched().WaitForNextPeriod() {
					return
				}
			}
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := r.Scheduler().Run(55 * ms); err != nil {
		t.Fatal(err)
	}
	if th.Err() != nil {
		t.Fatal(th.Err())
	}
	if iterations != 6 {
		t.Fatalf("iterations = %d, want 6", iterations)
	}
	if scope.Consumed() != 0 {
		t.Fatalf("scope not reclaimed: %d", scope.Consumed())
	}
	if got := th.Task().Stats().Releases; got != 6 {
		t.Fatalf("releases = %d", got)
	}
	if th.Kind() != NoHeap || th.Name() != "p" {
		t.Fatal("accessors wrong")
	}
}

func TestRegularThreadUsesHeap(t *testing.T) {
	r := newRuntime()
	var ok bool
	_, err := r.Spawn(Config{
		Name: "reg", Kind: Regular, Priority: 5,
		Release:     sched.Release{Kind: sched.Aperiodic},
		InitialArea: r.Memory().Heap(),
		Run: func(e *Env) {
			ref, err := e.Mem().Alloc(16, "data")
			if err != nil {
				t.Errorf("heap alloc: %v", err)
				return
			}
			v, err := e.Mem().Load(ref)
			ok = err == nil && v == "data"
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := r.Scheduler().Run(10 * ms); err != nil {
		t.Fatal(err)
	}
	if !ok {
		t.Fatal("regular thread could not use heap")
	}
}

func TestCrossThreadCommunicationRespectPriorities(t *testing.T) {
	// A NHRT producer fires a lower-priority sporadic RT consumer —
	// the shape of the paper's ProductionLine -> MonitoringSystem hop.
	r := newRuntime()
	var consumed int
	consumer, err := r.Spawn(Config{
		Name: "monitor", Kind: NoHeap, Priority: 25,
		Release:     sched.Release{Kind: sched.Sporadic},
		InitialArea: r.Memory().Immortal(),
		Run: func(e *Env) {
			for {
				consumed++
				if err := e.Sched().Consume(500 * time.Microsecond); err != nil {
					return
				}
				if !e.Sched().WaitForRelease() {
					return
				}
			}
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	producer, err := r.Spawn(Config{
		Name: "line", Kind: NoHeap, Priority: 30,
		Release:     sched.Release{Kind: sched.Periodic, Period: 10 * ms},
		InitialArea: r.Memory().Immortal(),
		Run: func(e *Env) {
			for {
				if err := e.Sched().Fire(consumer.Task()); err != nil {
					return
				}
				if err := e.Sched().Consume(ms); err != nil {
					return
				}
				if !e.Sched().WaitForNextPeriod() {
					return
				}
			}
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := r.Scheduler().Run(95 * ms); err != nil {
		t.Fatal(err)
	}
	if producer.Err() != nil || consumer.Err() != nil {
		t.Fatalf("errors: %v / %v", producer.Err(), consumer.Err())
	}
	if consumed != 10 {
		t.Fatalf("consumed = %d, want 10", consumed)
	}
	// The consumer starts only after the producer's 1ms of work.
	if got := consumer.Task().Stats().MaxStartLatency; got != ms {
		t.Fatalf("consumer start latency = %v, want 1ms", got)
	}
}
