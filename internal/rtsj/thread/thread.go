// Package thread binds the scheduler and the memory model into RTSJ's
// three thread flavours: RealtimeThread, NoHeapRealtimeThread (NHRT)
// and regular threads.
//
// A thread is a scheduler task plus a memory allocation context. The
// package enforces the creation-time rules the paper's ThreadDomain
// components rely on: NHRTs get no-heap contexts and must start
// outside heap memory, real-time threads must use real-time
// priorities, and regular threads must not.
package thread

import (
	"fmt"
	"sync"

	"soleil/internal/obs"
	"soleil/internal/rtsj/memory"
	"soleil/internal/rtsj/sched"
)

// Kind is the RTSJ thread flavour.
type Kind int

// Thread kinds.
const (
	// Regular is an ordinary (garbage-collected, non-real-time)
	// thread.
	Regular Kind = iota + 1
	// Realtime is an RTSJ RealtimeThread: real-time priority, may
	// touch any memory area.
	Realtime
	// NoHeap is an RTSJ NoHeapRealtimeThread: real-time priority,
	// never interacts with heap memory, and (on a real RTSJ VM) can
	// therefore never be preempted by the garbage collector.
	NoHeap
)

// String returns the ADL spelling of the kind.
func (k Kind) String() string {
	switch k {
	case Regular:
		return "Regular"
	case Realtime:
		return "RT"
	case NoHeap:
		return "NHRT"
	default:
		return fmt.Sprintf("Kind(%d)", int(k))
	}
}

// ParseKind converts an ADL thread-type spelling into a Kind.
func ParseKind(s string) (Kind, error) {
	switch s {
	case "Regular", "regular":
		return Regular, nil
	case "RT", "RealTime", "realtime":
		return Realtime, nil
	case "NHRT", "nhrt":
		return NoHeap, nil
	default:
		return 0, fmt.Errorf("thread: unknown thread kind %q", s)
	}
}

// Runtime couples a scheduler with a memory runtime; threads are
// spawned against a Runtime.
type Runtime struct {
	sched *sched.Scheduler
	mem   *memory.Runtime
}

// NewRuntime creates a thread runtime over the given scheduler and
// memory runtime.
func NewRuntime(s *sched.Scheduler, m *memory.Runtime) *Runtime {
	return &Runtime{sched: s, mem: m}
}

// Scheduler returns the underlying scheduler.
func (r *Runtime) Scheduler() *sched.Scheduler { return r.sched }

// Memory returns the underlying memory runtime.
func (r *Runtime) Memory() *memory.Runtime { return r.mem }

// Env is the execution environment handed to a thread body: the
// scheduler context plus the thread's memory allocation context.
type Env struct {
	tc  *sched.TaskContext
	mem *memory.Context

	// span is the current trace span of the executing thread. It is
	// owned by that thread alone (each thread has its own Env), so
	// plain reads and writes suffice.
	span obs.SpanContext
}

// NewEnv assembles an environment from its parts. Spawn builds
// environments for scheduled threads; NewEnv exists for execution
// outside the simulated scheduler — the wall-clock benchmark harness
// and tests — where tc may be nil.
func NewEnv(tc *sched.TaskContext, mem *memory.Context) *Env {
	return &Env{tc: tc, mem: mem}
}

// Sched returns the scheduler context (Consume, WaitForNextPeriod,
// Fire, ...).
func (e *Env) Sched() *sched.TaskContext { return e.tc }

// Mem returns the memory allocation context (Enter, Alloc, ...).
func (e *Env) Mem() *memory.Context { return e.mem }

// Span returns the thread's current trace span context. A nil Env
// (infrastructure driven without an environment) has no span.
func (e *Env) Span() obs.SpanContext {
	if e == nil {
		return obs.SpanContext{}
	}
	return e.span
}

// SetSpan installs s as the current span and returns the previous one
// so callers can restore it with stack discipline:
//
//	prev := env.SetSpan(child)
//	defer env.SetSpan(prev)
//
// SetSpan on a nil Env is a no-op.
func (e *Env) SetSpan(s obs.SpanContext) (prev obs.SpanContext) {
	if e == nil {
		return obs.SpanContext{}
	}
	prev = e.span
	e.span = s
	return prev
}

// Config describes a thread to spawn.
type Config struct {
	Name     string
	Kind     Kind
	Priority sched.Priority
	Release  sched.Release
	// InitialArea is the thread's initial allocation context. NHRTs
	// may not start in heap memory.
	InitialArea *memory.Area
	// Run is the thread body.
	Run func(*Env)
	// OnMiss is the optional deadline-miss handler.
	OnMiss func(sched.MissInfo)
}

// Thread is a spawned RTSJ-style thread.
type Thread struct {
	name string
	kind Kind
	task *sched.Task

	mu  sync.Mutex
	err error
}

// Name returns the thread name.
func (t *Thread) Name() string { return t.name }

// Kind returns the thread flavour.
func (t *Thread) Kind() Kind { return t.kind }

// Task returns the underlying scheduler task.
func (t *Thread) Task() *sched.Task { return t.task }

// Err returns the error, if any, that prevented the thread body from
// running (e.g. an illegal initial memory area discovered at release
// time). Call it after the scheduler run completes.
func (t *Thread) Err() error {
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.err
}

func (t *Thread) setErr(err error) {
	t.mu.Lock()
	defer t.mu.Unlock()
	t.err = err
}

// Spawn creates a thread. The memory context is created when the
// thread's first release dispatches and closed when the body returns.
func (r *Runtime) Spawn(cfg Config) (*Thread, error) {
	if cfg.Run == nil {
		return nil, fmt.Errorf("thread: %q needs a body", cfg.Name)
	}
	if cfg.InitialArea == nil {
		return nil, fmt.Errorf("thread: %q needs an initial memory area", cfg.Name)
	}
	switch cfg.Kind {
	case Regular:
		if cfg.Priority.RealTime() {
			return nil, fmt.Errorf("thread: regular thread %q may not use real-time priority %d",
				cfg.Name, cfg.Priority)
		}
	case Realtime:
		if !cfg.Priority.RealTime() {
			return nil, fmt.Errorf("thread: real-time thread %q needs a real-time priority, got %d",
				cfg.Name, cfg.Priority)
		}
	case NoHeap:
		if !cfg.Priority.RealTime() {
			return nil, fmt.Errorf("thread: NHRT %q needs a real-time priority, got %d",
				cfg.Name, cfg.Priority)
		}
		if cfg.InitialArea.Kind() == memory.Heap {
			return nil, &memory.MemoryAccessError{Op: "start NHRT in", Area: cfg.InitialArea.Name()}
		}
	default:
		return nil, fmt.Errorf("thread: %q has unknown kind %v", cfg.Name, cfg.Kind)
	}

	th := &Thread{name: cfg.Name, kind: cfg.Kind}
	task, err := r.sched.NewTask(sched.TaskConfig{
		Name:     cfg.Name,
		Priority: cfg.Priority,
		Release:  cfg.Release,
		OnMiss:   cfg.OnMiss,
		Body: func(tc *sched.TaskContext) {
			mctx, err := memory.NewContext(cfg.InitialArea, cfg.Kind == NoHeap)
			if err != nil {
				th.setErr(fmt.Errorf("thread %q: %w", cfg.Name, err))
				return
			}
			defer mctx.Close()
			cfg.Run(&Env{tc: tc, mem: mctx})
		},
	})
	if err != nil {
		return nil, err
	}
	th.task = task
	return th, nil
}
