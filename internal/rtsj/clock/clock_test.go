package clock

import (
	"sync"
	"testing"
	"testing/quick"
	"time"
)

func TestVirtualStartsAtZero(t *testing.T) {
	c := NewVirtual()
	if got := c.Now(); got != 0 {
		t.Fatalf("Now() = %v, want 0", got)
	}
}

func TestVirtualAdvance(t *testing.T) {
	c := NewVirtual()
	if err := c.Advance(10 * Millisecond); err != nil {
		t.Fatalf("Advance: %v", err)
	}
	if got := c.Now(); got != Time(10*Millisecond) {
		t.Fatalf("Now() = %v, want 10ms", got)
	}
	if err := c.Advance(5 * Microsecond); err != nil {
		t.Fatalf("Advance: %v", err)
	}
	want := Time(10*Millisecond + 5*Microsecond)
	if got := c.Now(); got != want {
		t.Fatalf("Now() = %v, want %v", got, want)
	}
}

func TestVirtualAdvanceNegativeRefused(t *testing.T) {
	c := NewVirtual()
	if err := c.Advance(-time.Nanosecond); err == nil {
		t.Fatal("Advance(-1ns) succeeded, want error")
	}
	if got := c.Now(); got != 0 {
		t.Fatalf("clock moved on refused advance: %v", got)
	}
}

func TestVirtualAdvanceTo(t *testing.T) {
	c := NewVirtual()
	if err := c.AdvanceTo(Time(42)); err != nil {
		t.Fatalf("AdvanceTo: %v", err)
	}
	if err := c.AdvanceTo(Time(41)); err == nil {
		t.Fatal("AdvanceTo backwards succeeded, want error")
	}
	if got := c.Now(); got != Time(42) {
		t.Fatalf("Now() = %v, want 42", got)
	}
}

func TestVirtualConcurrentAdvance(t *testing.T) {
	c := NewVirtual()
	const workers, perWorker = 8, 1000
	var wg sync.WaitGroup
	for i := 0; i < workers; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < perWorker; j++ {
				if err := c.Advance(Nanosecond); err != nil {
					t.Errorf("Advance: %v", err)
					return
				}
			}
		}()
	}
	wg.Wait()
	if got := c.Now(); got != Time(workers*perWorker) {
		t.Fatalf("Now() = %v, want %d", got, workers*perWorker)
	}
}

func TestTimeArithmetic(t *testing.T) {
	a := Time(100)
	b := a.Add(50 * Nanosecond)
	if b != Time(150) {
		t.Fatalf("Add: got %v", b)
	}
	if d := b.Sub(a); d != 50*Nanosecond {
		t.Fatalf("Sub: got %v", d)
	}
	if !a.Before(b) || b.Before(a) {
		t.Fatal("Before ordering wrong")
	}
	if !b.After(a) || a.After(b) {
		t.Fatal("After ordering wrong")
	}
}

// Property: Add then Sub is identity for non-negative durations.
func TestTimeAddSubRoundTrip(t *testing.T) {
	f := func(base int64, delta uint32) bool {
		tm := Time(base)
		d := Duration(delta)
		return tm.Add(d).Sub(tm) == d
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

// Property: a virtual clock is monotonic across any sequence of valid
// advances.
func TestVirtualMonotonicProperty(t *testing.T) {
	f := func(steps []uint16) bool {
		c := NewVirtual()
		last := c.Now()
		for _, s := range steps {
			if err := c.Advance(Duration(s)); err != nil {
				return false
			}
			now := c.Now()
			if now.Before(last) {
				return false
			}
			last = now
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestWallMonotonic(t *testing.T) {
	c := NewWall()
	a := c.Now()
	time.Sleep(time.Millisecond)
	b := c.Now()
	if !b.After(a) {
		t.Fatalf("wall clock not monotonic: %v then %v", a, b)
	}
}

func TestTimeString(t *testing.T) {
	if got := Time(1500).String(); got != "1.5µs" {
		t.Fatalf("String() = %q", got)
	}
}
