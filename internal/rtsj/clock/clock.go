// Package clock provides the time base for the simulated RTSJ runtime.
//
// The Real-Time Specification for Java assumes a high-resolution,
// monotonic clock with well-defined semantics for absolute and relative
// times (RTSJ chapter 9). Because this reproduction runs the real-time
// machinery as a user-level simulation, two clock implementations are
// provided:
//
//   - Virtual: a logical clock advanced explicitly by the scheduler.
//     It is fully deterministic and is what every scheduling decision,
//     release time and deadline in the simulated runtime is expressed
//     against.
//   - Wall: a thin wrapper over the host monotonic clock, used by the
//     benchmark harness to time the generated execution infrastructures
//     (the paper's Fig. 7 measurements are wall-clock measurements).
package clock

import (
	"fmt"
	"sync"
	"time"
)

// Time is an instant on a Clock, expressed in nanoseconds since the
// clock's epoch. The virtual clock's epoch is its creation; the wall
// clock's epoch is process start.
type Time int64

// Duration re-exports time.Duration for call-site convenience.
type Duration = time.Duration

// Common durations used throughout the runtime.
const (
	Nanosecond  = time.Nanosecond
	Microsecond = time.Microsecond
	Millisecond = time.Millisecond
	Second      = time.Second
)

// Add returns the instant d after t.
func (t Time) Add(d Duration) Time { return t + Time(d) }

// Sub returns the duration t-u.
func (t Time) Sub(u Time) Duration { return Duration(t - u) }

// Before reports whether t precedes u.
func (t Time) Before(u Time) bool { return t < u }

// After reports whether t follows u.
func (t Time) After(u Time) bool { return t > u }

// String renders the instant as a duration since the epoch.
func (t Time) String() string { return Duration(t).String() }

// Clock is the time source used by the scheduler and threads.
type Clock interface {
	// Now returns the current instant.
	Now() Time
}

// Virtual is a deterministic logical clock. It only moves when Advance
// or AdvanceTo is called — typically by the scheduler when every task
// is waiting for a future release.
//
// The zero value is ready to use and starts at instant 0.
type Virtual struct {
	mu  sync.Mutex
	now Time
}

var _ Clock = (*Virtual)(nil)

// NewVirtual returns a virtual clock starting at instant 0.
func NewVirtual() *Virtual { return &Virtual{} }

// Now returns the current virtual instant.
func (c *Virtual) Now() Time {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.now
}

// Advance moves the clock forward by d. Advancing by a negative
// duration is a programming error and returns an error without moving
// the clock.
func (c *Virtual) Advance(d Duration) error {
	if d < 0 {
		return fmt.Errorf("clock: advance by negative duration %v", d)
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	c.now = c.now.Add(d)
	return nil
}

// AdvanceTo moves the clock to instant t. Moving backwards is refused.
func (c *Virtual) AdvanceTo(t Time) error {
	c.mu.Lock()
	defer c.mu.Unlock()
	if t < c.now {
		return fmt.Errorf("clock: cannot move backwards from %v to %v", c.now, t)
	}
	c.now = t
	return nil
}

// Wall is a monotonic wall clock relative to process start.
type Wall struct {
	start time.Time
}

var _ Clock = (*Wall)(nil)

// NewWall returns a wall clock whose epoch is the moment of the call.
func NewWall() *Wall { return &Wall{start: time.Now()} }

// Now returns the elapsed monotonic time since the epoch.
func (c *Wall) Now() Time { return Time(time.Since(c.start)) }
