// Package scenario implements the content classes of the paper's
// motivation example (Sect. 2.2): the factory production line that
// emits a measurement every 10 ms, the monitoring system that
// evaluates measurements and reports anomalies to a worker console,
// and the audit log that records everything. These are the only
// classes the paper's development process asks the developer to
// write; the framework generates the rest.
package scenario

import (
	"fmt"
	"sync/atomic"

	"soleil/internal/membrane"
	"soleil/internal/rtsj/thread"
)

// Interface and operation names of the scenario.
const (
	ItfMonitor = "iMonitor"
	ItfConsole = "iConsole"
	ItfLog     = "iLog"

	OpReport  = "report"
	OpDisplay = "display"
	OpLog     = "log"
)

// Threshold above which a measurement is an anomaly.
const Threshold = 90.0

// Measurement is the production line's state message.
type Measurement struct {
	Seq   int64
	Value float64
	// Station identifies the producing station on the line.
	Station uint8
}

// DeepCopy implements the deep-copy pattern for cross-area transfer.
func (m Measurement) DeepCopy() any { return m }

// Anomalous reports whether the measurement breaches the threshold.
func (m Measurement) Anomalous() bool { return m.Value > Threshold }

// Alert is the message shown on the worker console.
type Alert struct {
	Seq     int64
	Value   float64
	Station uint8
	Text    string
}

// DeepCopy implements the deep-copy pattern.
func (a Alert) DeepCopy() any { return a }

// Work-loop lengths of the scenario's functional computation. The
// paper's transaction costs ~32 µs on its 2008 testbed — functional
// work dominates, which is why the framework's overhead lands at a
// few percent. These loops give the Go contents a comparable balance
// (transactions in the microsecond range) so the Fig. 7 comparison
// measures overhead against realistic work, not against an empty
// body. The same functions are called verbatim by the hand-written
// OO baseline.
const (
	ProduceIters = 512
	EvalIters    = 4096
	AuditIters   = 256
)

// Synthesize computes the measurement value for a sequence number: a
// deterministic sawtooth that breaches the threshold once every 16
// messages (so anomaly handling is exercised on a fixed fraction of
// transactions), preceded by the production-side sensor conditioning
// work.
func Synthesize(seq int64) float64 {
	acc := float64(seq&1023) * 0.001
	for i := 0; i < ProduceIters; i++ {
		acc = acc*0.99921 + float64((seq+int64(i))&7)*0.00017
	}
	base := float64(seq%16) * 6.0 // 0..90
	if seq%16 == 15 {
		base += 5 // 95: anomaly
	}
	// The conditioning term is sub-resolution: it keeps the work loop
	// live without disturbing the deterministic sawtooth.
	return base + acc*1e-12
}

// Evaluate runs the monitoring computation over a measurement — the
// filtering/trend analysis a real monitoring system performs — and
// returns its score. The score feeds the audit checksum so the work
// cannot be optimized away.
func Evaluate(m Measurement) float64 {
	acc := m.Value
	for i := 0; i < EvalIters; i++ {
		acc = acc*0.999983 + float64((m.Seq+int64(i))&15)*0.000021
	}
	return acc
}

// AuditFold folds a measurement into the audit checksum, modelling
// the record serialization work of the audit writer.
func AuditFold(sum uint64, m Measurement) uint64 {
	h := sum
	for i := 0; i < AuditIters; i++ {
		h = h*1099511628211 + uint64(m.Seq) + uint64(i)
	}
	return h + uint64(m.Value*100)
}

// ProductionLine is the periodic producer content.
type ProductionLine struct {
	svc *membrane.Services
	seq int64
}

var _ membrane.ActiveContent = (*ProductionLine)(nil)

// NewProductionLine creates the content instance.
func NewProductionLine() *ProductionLine { return &ProductionLine{} }

// Init implements membrane.Content. Ports are resolved through the
// services on every call (not cached), so runtime rebinding takes
// effect immediately — the Fractal binding semantics the framework
// promises.
func (p *ProductionLine) Init(svc *membrane.Services) error {
	if _, err := svc.Port(ItfMonitor); err != nil {
		return err
	}
	p.svc = svc
	return nil
}

// Invoke implements membrane.Content; the production line serves no
// interface.
func (p *ProductionLine) Invoke(env *thread.Env, itf, op string, arg any) (any, error) {
	return nil, fmt.Errorf("scenario: production line serves no interface (got %s.%s)", itf, op)
}

// Activate implements membrane.ActiveContent: one production cycle
// emits one measurement.
func (p *ProductionLine) Activate(env *thread.Env) error {
	seq := atomic.AddInt64(&p.seq, 1)
	m := Measurement{Seq: seq, Value: Synthesize(seq), Station: uint8(seq % 4)}
	monitor, err := p.svc.Port(ItfMonitor)
	if err != nil {
		return err
	}
	return monitor.Send(env, OpReport, m)
}

// Produced returns the number of emitted measurements.
func (p *ProductionLine) Produced() int64 { return atomic.LoadInt64(&p.seq) }

// MonitoringSystem is the sporadic evaluator content.
type MonitoringSystem struct {
	svc *membrane.Services

	evaluated int64
	alerts    int64
	lastScore uint64
}

// LastScore returns the last evaluation score (scaled to micro-units).
func (m *MonitoringSystem) LastScore() uint64 { return atomic.LoadUint64(&m.lastScore) }

var _ membrane.Content = (*MonitoringSystem)(nil)

// NewMonitoringSystem creates the content instance.
func NewMonitoringSystem() *MonitoringSystem { return &MonitoringSystem{} }

// Init implements membrane.Content. Ports are verified at bootstrap
// but resolved per call, so rebinding takes effect immediately.
func (m *MonitoringSystem) Init(svc *membrane.Services) error {
	if _, err := svc.Port(ItfConsole); err != nil {
		return err
	}
	if _, err := svc.Port(ItfLog); err != nil {
		return err
	}
	m.svc = svc
	return nil
}

// Invoke implements membrane.Content: each measurement is evaluated,
// anomalies go synchronously to the console, and everything is
// forwarded asynchronously to the audit log.
func (m *MonitoringSystem) Invoke(env *thread.Env, itf, op string, arg any) (any, error) {
	if itf != ItfMonitor || op != OpReport {
		return nil, fmt.Errorf("scenario: monitoring system does not serve %s.%s", itf, op)
	}
	meas, ok := arg.(Measurement)
	if !ok {
		return nil, fmt.Errorf("scenario: monitoring system received %T", arg)
	}
	atomic.AddInt64(&m.evaluated, 1)
	atomic.StoreUint64(&m.lastScore, uint64(Evaluate(meas)*1e6))
	if meas.Anomalous() {
		atomic.AddInt64(&m.alerts, 1)
		alert := Alert{
			Seq: meas.Seq, Value: meas.Value, Station: meas.Station,
			Text: "threshold breach",
		}
		console, err := m.svc.Port(ItfConsole)
		if err != nil {
			return nil, err
		}
		if _, err := console.Call(env, OpDisplay, alert); err != nil {
			return nil, err
		}
	}
	audit, err := m.svc.Port(ItfLog)
	if err != nil {
		return nil, err
	}
	if err := audit.Send(env, OpLog, meas); err != nil {
		return nil, err
	}
	return nil, nil
}

// Evaluated returns the number of processed measurements.
func (m *MonitoringSystem) Evaluated() int64 { return atomic.LoadInt64(&m.evaluated) }

// Alerts returns the number of anomalies reported to the console.
func (m *MonitoringSystem) Alerts() int64 { return atomic.LoadInt64(&m.alerts) }

// Console is the passive worker-console content. It lives in a small
// scoped memory: the alert rendering it allocates is reclaimed when
// the displaying invocation leaves the scope.
type Console struct {
	displayed int64
	lastSeq   int64
}

var _ membrane.Content = (*Console)(nil)

// NewConsole creates the content instance.
func NewConsole() *Console { return &Console{} }

// Init implements membrane.Content.
func (c *Console) Init(svc *membrane.Services) error { return nil }

// Invoke implements membrane.Content.
func (c *Console) Invoke(env *thread.Env, itf, op string, arg any) (any, error) {
	if itf != ItfConsole || op != OpDisplay {
		return nil, fmt.Errorf("scenario: console does not serve %s.%s", itf, op)
	}
	alert, ok := arg.(Alert)
	if !ok {
		return nil, fmt.Errorf("scenario: console received %T", arg)
	}
	// Render the alert into the current allocation area — the console
	// scope when the scope-enter pattern is active.
	rendered := fmt.Sprintf("[station %d] %s: value %.1f (seq %d)",
		alert.Station, alert.Text, alert.Value, alert.Seq)
	if _, err := env.Mem().Alloc(int64(len(rendered)), rendered); err != nil {
		return nil, err
	}
	atomic.AddInt64(&c.displayed, 1)
	atomic.StoreInt64(&c.lastSeq, alert.Seq)
	return len(rendered), nil
}

// Displayed returns the number of alerts shown.
func (c *Console) Displayed() int64 { return atomic.LoadInt64(&c.displayed) }

// LastSeq returns the sequence number of the last displayed alert.
func (c *Console) LastSeq() int64 { return atomic.LoadInt64(&c.lastSeq) }

// Audit is the non-real-time audit log content, running on a regular
// thread over heap memory.
type Audit struct {
	logged   int64
	checksum uint64
}

var _ membrane.Content = (*Audit)(nil)

// NewAudit creates the content instance.
func NewAudit() *Audit { return &Audit{} }

// Init implements membrane.Content.
func (a *Audit) Init(svc *membrane.Services) error { return nil }

// Invoke implements membrane.Content.
func (a *Audit) Invoke(env *thread.Env, itf, op string, arg any) (any, error) {
	if itf != ItfLog || op != OpLog {
		return nil, fmt.Errorf("scenario: audit does not serve %s.%s", itf, op)
	}
	meas, ok := arg.(Measurement)
	if !ok {
		return nil, fmt.Errorf("scenario: audit received %T", arg)
	}
	// Fold the record into a running checksum — the audit "write".
	atomic.StoreUint64(&a.checksum, AuditFold(atomic.LoadUint64(&a.checksum), meas))
	atomic.AddInt64(&a.logged, 1)
	return nil, nil
}

// Logged returns the number of audited measurements.
func (a *Audit) Logged() int64 { return atomic.LoadInt64(&a.logged) }

// Checksum returns the audit checksum.
func (a *Audit) Checksum() uint64 { return atomic.LoadUint64(&a.checksum) }

// Contents bundles one instantiation of the scenario's content
// classes.
type Contents struct {
	Line    *ProductionLine
	Monitor *MonitoringSystem
	Console *Console
	Audit   *Audit
}

// NewContents instantiates the four content classes.
func NewContents() *Contents {
	return &Contents{
		Line:    NewProductionLine(),
		Monitor: NewMonitoringSystem(),
		Console: NewConsole(),
		Audit:   NewAudit(),
	}
}

// Register installs the contents under the fixture's content-class
// names on a registry with Register(string, func() membrane.Content).
func (c *Contents) Register(reg interface {
	Register(string, func() membrane.Content) error
}) error {
	for class, content := range map[string]membrane.Content{
		"ProductionLineImpl":   c.Line,
		"MonitoringSystemImpl": c.Monitor,
		"ConsoleImpl":          c.Console,
		"AuditImpl":            c.Audit,
	} {
		content := content
		if err := reg.Register(class, func() membrane.Content { return content }); err != nil {
			return err
		}
	}
	return nil
}
