package scenario

import (
	"errors"
	"fmt"
	"testing"
	"testing/quick"

	"soleil/internal/membrane"
	"soleil/internal/rtsj/memory"
	"soleil/internal/rtsj/thread"
)

func TestSynthesizeDeterministic(t *testing.T) {
	for seq := int64(1); seq <= 64; seq++ {
		a, b := Synthesize(seq), Synthesize(seq)
		if a != b {
			t.Fatalf("Synthesize(%d) non-deterministic: %v vs %v", seq, a, b)
		}
	}
}

func TestAnomalyEverySixteenth(t *testing.T) {
	anomalies := 0
	for seq := int64(1); seq <= 160; seq++ {
		m := Measurement{Seq: seq, Value: Synthesize(seq)}
		if m.Anomalous() {
			anomalies++
			if seq%16 != 15 {
				t.Fatalf("unexpected anomaly at seq %d (value %v)", seq, m.Value)
			}
		}
	}
	if anomalies != 10 {
		t.Fatalf("anomalies = %d, want 10", anomalies)
	}
}

func TestEvaluateAndAuditFoldDeterministic(t *testing.T) {
	f := func(seq int64, sum uint64) bool {
		m := Measurement{Seq: seq, Value: Synthesize(seq % 1024)}
		return Evaluate(m) == Evaluate(m) && AuditFold(sum, m) == AuditFold(sum, m)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20}); err != nil {
		t.Fatal(err)
	}
}

func TestMessageDeepCopies(t *testing.T) {
	m := Measurement{Seq: 1, Value: 2, Station: 3}
	if got := m.DeepCopy().(Measurement); got != m {
		t.Fatalf("measurement copy = %+v", got)
	}
	a := Alert{Seq: 1, Value: 2, Station: 3, Text: "x"}
	if got := a.DeepCopy().(Alert); got != a {
		t.Fatalf("alert copy = %+v", got)
	}
}

// recordingPort captures Send/Call traffic for content tests.
type recordingPort struct {
	sends []AsyncRecord
	calls []AsyncRecord
	fail  error
}

// AsyncRecord is one captured operation.
type AsyncRecord struct {
	Op  string
	Arg any
}

func (p *recordingPort) Send(env *thread.Env, op string, arg any) error {
	if p.fail != nil {
		return p.fail
	}
	p.sends = append(p.sends, AsyncRecord{Op: op, Arg: arg})
	return nil
}

func (p *recordingPort) Call(env *thread.Env, op string, arg any) (any, error) {
	if p.fail != nil {
		return nil, p.fail
	}
	p.calls = append(p.calls, AsyncRecord{Op: op, Arg: arg})
	return nil, nil
}

func testServices(t *testing.T, name string, ports map[string]membrane.Port) *membrane.Services {
	t.Helper()
	bc := membrane.NewBindingController(name)
	for itf, p := range ports {
		if err := bc.Bind(itf, p); err != nil {
			t.Fatal(err)
		}
	}
	return membrane.NewServices(name, bc)
}

func testEnv(t *testing.T) (*thread.Env, *memory.Runtime) {
	t.Helper()
	rt := memory.NewRuntime()
	ctx, err := memory.NewContext(rt.Immortal(), false)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(ctx.Close)
	return thread.NewEnv(nil, ctx), rt
}

func TestProductionLineActivate(t *testing.T) {
	env, _ := testEnv(t)
	monitor := &recordingPort{}
	pl := NewProductionLine()
	if err := pl.Init(testServices(t, "pl", map[string]membrane.Port{ItfMonitor: monitor})); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 3; i++ {
		if err := pl.Activate(env); err != nil {
			t.Fatal(err)
		}
	}
	if pl.Produced() != 3 || len(monitor.sends) != 3 {
		t.Fatalf("produced %d, sent %d", pl.Produced(), len(monitor.sends))
	}
	if monitor.sends[0].Op != OpReport {
		t.Fatalf("op = %s", monitor.sends[0].Op)
	}
	m := monitor.sends[2].Arg.(Measurement)
	if m.Seq != 3 || m.Value != Synthesize(3) {
		t.Fatalf("measurement = %+v", m)
	}
	if _, err := pl.Invoke(env, "x", "y", nil); err == nil {
		t.Fatal("production line served an interface")
	}
	// Init without the port is refused.
	if err := NewProductionLine().Init(testServices(t, "pl", nil)); err == nil {
		t.Fatal("init without iMonitor accepted")
	}
}

func TestMonitoringSystemRouting(t *testing.T) {
	env, _ := testEnv(t)
	console := &recordingPort{}
	audit := &recordingPort{}
	ms := NewMonitoringSystem()
	err := ms.Init(testServices(t, "ms", map[string]membrane.Port{
		ItfConsole: console, ItfLog: audit,
	}))
	if err != nil {
		t.Fatal(err)
	}
	// Normal measurement: audit only.
	if _, err := ms.Invoke(env, ItfMonitor, OpReport, Measurement{Seq: 1, Value: 10}); err != nil {
		t.Fatal(err)
	}
	if len(console.calls) != 0 || len(audit.sends) != 1 {
		t.Fatalf("normal routing: console %d, audit %d", len(console.calls), len(audit.sends))
	}
	// Anomalous measurement: console then audit.
	if _, err := ms.Invoke(env, ItfMonitor, OpReport, Measurement{Seq: 2, Value: 99}); err != nil {
		t.Fatal(err)
	}
	if len(console.calls) != 1 || len(audit.sends) != 2 {
		t.Fatalf("anomaly routing: console %d, audit %d", len(console.calls), len(audit.sends))
	}
	alert := console.calls[0].Arg.(Alert)
	if alert.Seq != 2 || alert.Value != 99 {
		t.Fatalf("alert = %+v", alert)
	}
	if ms.Evaluated() != 2 || ms.Alerts() != 1 {
		t.Fatalf("stats: evaluated %d alerts %d", ms.Evaluated(), ms.Alerts())
	}
	if ms.LastScore() == 0 {
		t.Fatal("evaluation work elided")
	}
	// Wrong interface and wrong payload are refused.
	if _, err := ms.Invoke(env, "zz", OpReport, Measurement{}); err == nil {
		t.Fatal("wrong interface accepted")
	}
	if _, err := ms.Invoke(env, ItfMonitor, OpReport, "not a measurement"); err == nil {
		t.Fatal("wrong payload accepted")
	}
	// Console failures propagate.
	console.fail = errors.New("console down")
	if _, err := ms.Invoke(env, ItfMonitor, OpReport, Measurement{Seq: 3, Value: 99}); err == nil {
		t.Fatal("console failure swallowed")
	}
}

func TestConsoleRendersIntoCurrentArea(t *testing.T) {
	env, rt := testEnv(t)
	c := NewConsole()
	if err := c.Init(nil); err != nil {
		t.Fatal(err)
	}
	res, err := c.Invoke(env, ItfConsole, OpDisplay, Alert{Seq: 7, Value: 95, Text: "x"})
	if err != nil {
		t.Fatal(err)
	}
	if n, ok := res.(int); !ok || n <= 0 {
		t.Fatalf("render length = %v", res)
	}
	if c.Displayed() != 1 || c.LastSeq() != 7 {
		t.Fatalf("stats: %d / %d", c.Displayed(), c.LastSeq())
	}
	if rt.Immortal().Consumed() == 0 {
		t.Fatal("render did not allocate in the current area")
	}
	if _, err := c.Invoke(env, ItfConsole, OpDisplay, 42); err == nil {
		t.Fatal("wrong payload accepted")
	}
	if _, err := c.Invoke(env, "zz", OpDisplay, Alert{}); err == nil {
		t.Fatal("wrong interface accepted")
	}
}

func TestAuditChecksumMatchesFold(t *testing.T) {
	env, _ := testEnv(t)
	a := NewAudit()
	if err := a.Init(nil); err != nil {
		t.Fatal(err)
	}
	var want uint64
	for i := int64(1); i <= 5; i++ {
		m := Measurement{Seq: i, Value: Synthesize(i)}
		want = AuditFold(want, m)
		if _, err := a.Invoke(env, ItfLog, OpLog, m); err != nil {
			t.Fatal(err)
		}
	}
	if a.Logged() != 5 || a.Checksum() != want {
		t.Fatalf("logged %d checksum %d want %d", a.Logged(), a.Checksum(), want)
	}
	if _, err := a.Invoke(env, ItfLog, OpLog, "junk"); err == nil {
		t.Fatal("wrong payload accepted")
	}
	if _, err := a.Invoke(env, "zz", OpLog, Measurement{}); err == nil {
		t.Fatal("wrong interface accepted")
	}
}

func TestContentsRegisterFailsOnDuplicate(t *testing.T) {
	c := NewContents()
	reg := &fakeRegistry{classes: map[string]bool{"ConsoleImpl": true}}
	if err := c.Register(reg); err == nil {
		t.Fatal("duplicate registration accepted")
	}
}

type fakeRegistry struct {
	classes map[string]bool
}

func (r *fakeRegistry) Register(class string, f func() membrane.Content) error {
	if r.classes[class] {
		return fmt.Errorf("duplicate %s", class)
	}
	r.classes[class] = true
	return nil
}
