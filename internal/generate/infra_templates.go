package generate

import (
	"text/template"

	"soleil/internal/model"
	"soleil/internal/patterns"
)

// tmplFuncs are shared template helpers.
var tmplFuncs = template.FuncMap{
	"patternExpr": func(k patterns.Kind) string {
		switch k {
		case patterns.ScopeEnter:
			return "patterns.ScopeEnter"
		case patterns.Portal:
			return "patterns.Portal"
		case patterns.DeepCopy:
			return "patterns.DeepCopy"
		default:
			return "patterns.None"
		}
	},
	"threadKindExpr": func(k model.ThreadKind) string {
		switch k {
		case model.NoHeapRealtimeThread:
			return "thread.NoHeap"
		case model.RealtimeThread:
			return "thread.Realtime"
		default:
			return "thread.Regular"
		}
	},
}

// tmplInfraSoleil is the SOLEIL-mode infrastructure: reified
// membranes, interceptor chains, full bootstrap, simulation wiring.
var tmplInfraSoleil = template.Must(template.New("infraSoleil").Funcs(tmplFuncs).Parse(Header + `; mode SOLEIL. DO NOT EDIT.
//
// Generated execution infrastructure for architecture {{printf "%q" .ArchName}}:
// full componentization — membranes, controllers and interceptors are
// reified at runtime and reconfiguration is available at both the
// functional and the membrane level.

package {{.Package}}

import (
	"fmt"
	"io"
	"time"

	"soleil/internal/comm"
	"soleil/internal/membrane"
	"soleil/internal/patterns"
	"soleil/internal/rtsj/memory"
	"soleil/internal/rtsj/sched"
	"soleil/internal/rtsj/thread"
)

var (
	_ = patterns.None // unused when no binding crosses areas
	_ = comm.Refuse   // unused when the architecture has no async binding
)

// System is the generated execution infrastructure.
type System struct {
	Mem *memory.Runtime
{{- range .Scopes}}
	{{.Var}} *memory.Area
{{- end}}
{{- range .Components}}
	{{.Var}}Content *{{.Type}}
	{{.Var}} *membrane.Membrane
	{{.Var}}Skeletons []*membrane.AsyncSkeleton
{{- end}}
{{- range .Buffers}}
	{{.Var}} *comm.RTBuffer
	{{.Var}}Stub *membrane.AsyncStub
{{- end}}
}

// BuildSystem wires the complete infrastructure and bootstraps it.
func BuildSystem() (*System, error) {
	s := &System{}
	s.Mem = memory.NewRuntime(memory.WithImmortalSize({{.ImmortalSize}}))
	mem := s.Mem
	_ = mem
{{- range .Scopes}}
	{
		a, err := mem.NewScoped({{printf "%q" .Name}}, {{.Size}})
		if err != nil {
			return nil, err
		}
		s.{{.Var}} = a
	}
{{- end}}
{{- range .Components}}
	s.{{.Var}}Content = &{{.Type}}{}
	{
		m, err := new{{.GoName}}Membrane(s.{{.Var}}Content)
		if err != nil {
			return nil, err
		}
		s.{{.Var}} = m
	}
{{- end}}
{{- range .Buffers}}
	{
		buf, err := comm.NewRTBuffer({{printf "%q" .Name}}, {{.Cap}}, comm.Refuse, {{.AreaExpr}}, 256)
		if err != nil {
			return nil, err
		}
		s.{{.Var}} = buf
		stub, err := membrane.NewAsyncStub(buf, {{printf "%q" .ServerItf}})
		if err != nil {
			return nil, err
		}
		s.{{.Var}}Stub = stub
		if err := s.{{.ClientVar}}.Binding().Bind({{printf "%q" .ClientItf}}, stub); err != nil {
			return nil, err
		}
		skel, err := membrane.NewAsyncSkeleton(buf, s.{{.ServerVar}})
		if err != nil {
			return nil, err
		}
		s.{{.ServerVar}}Skeletons = append(s.{{.ServerVar}}Skeletons, skel)
	}
{{- end}}
{{- range .Syncs}}
	{
{{- if .Pattern}}
		mi, err := membrane.NewMemoryInterceptor({{patternExpr .Pattern}}, {{if .ScopeVar}}s.{{.ScopeVar}}{{else}}nil{{end}})
		if err != nil {
			return nil, err
		}
		port, err := membrane.NewSyncPort(s.{{.ServerVar}}, {{printf "%q" .ServerItf}}, mi)
{{- else}}
		port, err := membrane.NewSyncPort(s.{{.ServerVar}}, {{printf "%q" .ServerItf}})
{{- end}}
		if err != nil {
			return nil, err
		}
		if err := s.{{.ClientVar}}.Binding().Bind({{printf "%q" .ClientItf}}, port); err != nil {
			return nil, err
		}
	}
{{- end}}
	// Bootstrap: passive services first, then active producers.
{{- range .Components}}{{if not .Active}}
	if err := s.{{.Var}}.Lifecycle().Start(); err != nil {
		return nil, err
	}
{{- end}}{{end}}
{{- range .Components}}{{if .Active}}
	if err := s.{{.Var}}.Lifecycle().Start(); err != nil {
		return nil, err
	}
{{- end}}{{end}}
	return s, nil
}
{{range .Components}}{{if .Active}}
// Activate{{.GoName}} runs one release of component {{.Name}}.
func (s *System) Activate{{.GoName}}(env *thread.Env) error {
	return s.{{.Var}}Content.Activate(env)
}

// Deliver{{.GoName}} drains the asynchronous messages pending for
// component {{.Name}}.
func (s *System) Deliver{{.GoName}}(env *thread.Env) (int, error) {
	total := 0
	for _, sk := range s.{{.Var}}Skeletons {
		n, err := sk.Drain(env)
		total += n
		if err != nil {
			return total, err
		}
	}
	return total, nil
}
{{end}}{{end}}
// Transaction drives one complete iteration of the system.
func (s *System) Transaction(env *thread.Env) error {
{{- range .ActivateRoots}}
	if err := s.Activate{{.}}(env); err != nil {
		return err
	}
{{- end}}
{{- range .DeliverOrder}}
	if _, err := s.Deliver{{.}}(env); err != nil {
		return err
	}
{{- end}}
	return nil
}

// RunSimulation executes the system on the simulated real-time
// scheduler until the virtual-time horizon.
func (s *System) RunSimulation(d time.Duration) error {
	sch := sched.New()
	rt := thread.NewRuntime(sch, s.Mem)
	tasks := make(map[string]*sched.Task)
{{- range .Threads}}
	{
		th, err := rt.Spawn(thread.Config{
			Name:     {{printf "%q" .Name}},
			Kind:     {{threadKindExpr .Kind}},
			Priority: {{.Priority}},
			Release: sched.Release{
				{{- if .Periodic}}Kind: sched.Periodic, Period: time.Duration({{.PeriodNS}}),
				{{- else if .Sporadic}}Kind: sched.Sporadic, MinInterarrival: time.Duration({{.PeriodNS}}),
				{{- else}}Kind: sched.Aperiodic,
				{{- end}}
				{{- if .DeadlineNS}}
				Deadline: time.Duration({{.DeadlineNS}}),
				{{- end}}
				{{- if .CostNS}}
				Cost: time.Duration({{.CostNS}}),
				{{- end}}
			},
			InitialArea: {{.AreaExpr}},
			Run: func(env *thread.Env) {
				for {
{{- if .Sporadic}}
					if _, err := s.Deliver{{.CompGoName}}(env); err != nil {
						return
					}
					if !env.Sched().WaitForRelease() {
						return
					}
{{- else if .Periodic}}
					if err := s.Activate{{.CompGoName}}(env); err != nil {
						return
					}
					if !env.Sched().WaitForNextPeriod() {
						return
					}
{{- else}}
					_ = s.Activate{{.CompGoName}}(env)
					return
{{- end}}
				}
			},
		})
		if err != nil {
			return err
		}
		tasks[{{printf "%q" .CompVar}}] = th.Task()
	}
{{- end}}
{{- range .Buffers}}
	if t := tasks[{{printf "%q" .ServerVar}}]; t != nil {
		err := s.{{.ClientVar}}.Binding().Bind({{printf "%q" .ClientItf}},
			&membrane.FirePort{Inner: s.{{.Var}}Stub, Task: t})
		if err != nil {
			return err
		}
	}
{{- end}}
	return sch.Run(d)
}

// Report prints the per-component activity counters.
func (s *System) Report(w io.Writer) {
{{- range .Components}}
	fmt.Fprintf(w, "%-24s invocations=%d\n", {{printf "%q" .Name}}, s.{{.Var}}Content.Invocations())
{{- end}}
	f := s.Mem.Footprint()
	fmt.Fprintf(w, "memory: immortal=%dB heap=%dB scoped-budget=%dB\n",
		f.ImmortalBytes, f.HeapBytes, f.ScopedBudget)
}
`))
