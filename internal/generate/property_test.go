package generate

import (
	"testing"
	"testing/quick"

	"soleil/internal/assembly"
	"soleil/internal/fixture"
	"soleil/internal/validate"
)

// Property: every random architecture that passes RTSJ validation
// generates gofmt-valid source in all three modes, meeting the
// code-generation requirements; invalid architectures are refused.
func TestGenerateRandomArchitecturesProperty(t *testing.T) {
	modes := []assembly.Mode{assembly.Soleil, assembly.MergeAll, assembly.UltraMerge}
	generated := 0
	f := func(seed int64) bool {
		arch, err := fixture.RandomArchitecture(seed)
		if err != nil {
			t.Logf("seed %d: build: %v", seed, err)
			return false
		}
		if _, err := validate.ApplySuggestedPatterns(arch); err != nil {
			t.Logf("seed %d: suggest: %v", seed, err)
			return false
		}
		valid := validate.Validate(arch).OK()
		for _, mode := range modes {
			files, err := Generate(arch, Options{Mode: mode, Main: true})
			if !valid {
				if err == nil {
					t.Logf("seed %d %v: invalid architecture generated", seed, mode)
					return false
				}
				continue
			}
			if err != nil {
				t.Logf("seed %d %v: generate: %v", seed, mode, err)
				return false
			}
			if !CheckRequirements(files, mode).OK() {
				t.Logf("seed %d %v: requirements not met", seed, mode)
				return false
			}
		}
		if valid {
			generated++
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
	if generated == 0 {
		t.Fatal("no random architecture generated — generator too hostile")
	}
}
