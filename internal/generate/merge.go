package generate

import (
	"bytes"
	"fmt"
	"go/ast"
	"go/format"
	"go/parser"
	"go/printer"
	"go/token"
	"sort"
	"strings"
)

// MergeFiles is the source-to-source merge pass — the analogue of the
// paper's Spoon transformation (Sect. 4.3): it parses the generated
// files, unifies their import sets, concatenates their declarations
// and emits one gofmt-formatted file. It is what collapses the
// ULTRA-MERGE output into a single compilation unit.
func MergeFiles(files []File, outName, pkg string) (File, error) {
	if len(files) == 0 {
		return File{}, fmt.Errorf("generate: nothing to merge")
	}
	fset := token.NewFileSet()
	imports := make(map[string]bool)
	var decls []string

	for _, f := range files {
		parsed, err := parser.ParseFile(fset, f.Name, f.Content, parser.ParseComments)
		if err != nil {
			return File{}, fmt.Errorf("generate: merge parse %s: %w", f.Name, err)
		}
		if got := parsed.Name.Name; got != pkg {
			return File{}, fmt.Errorf("generate: merge of %s: package %q, want %q", f.Name, got, pkg)
		}
		for _, imp := range parsed.Imports {
			if imp.Name != nil {
				imports[imp.Name.Name+" "+imp.Path.Value] = true
			} else {
				imports[imp.Path.Value] = true
			}
		}
		for _, d := range parsed.Decls {
			if gd, ok := d.(*ast.GenDecl); ok && gd.Tok == token.IMPORT {
				continue
			}
			var buf bytes.Buffer
			if err := printer.Fprint(&buf, fset, d); err != nil {
				return File{}, fmt.Errorf("generate: merge print %s: %w", f.Name, err)
			}
			decls = append(decls, buf.String())
		}
	}

	paths := make([]string, 0, len(imports))
	for p := range imports {
		paths = append(paths, p)
	}
	sort.Strings(paths)

	var out bytes.Buffer
	fmt.Fprintf(&out, "%s; merged by the ULTRA-MERGE source-to-source pass. DO NOT EDIT.\n\n", Header)
	fmt.Fprintf(&out, "package %s\n\n", pkg)
	if len(paths) > 0 {
		out.WriteString("import (\n")
		for _, p := range paths {
			fmt.Fprintf(&out, "\t%s\n", p)
		}
		out.WriteString(")\n\n")
	}
	out.WriteString(strings.Join(decls, "\n\n"))
	out.WriteString("\n")

	src, err := format.Source(out.Bytes())
	if err != nil {
		return File{}, fmt.Errorf("generate: merged output does not format: %w\n%s", err, out.String())
	}
	return File{Name: outName, Content: src}, nil
}
