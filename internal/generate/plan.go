// Package generate implements Soleil, the execution-infrastructure
// generator (Sect. 4.3): it turns a validated RT system architecture
// into Go source code that wires memory areas, buffers, membranes (or
// their merged equivalents), threads and bootstrap logic against the
// framework's runtime library — the analogue of the paper's Juliac
// backend generating Java against Fractal.
//
// Three generation modes are supported, matching the paper:
//
//   - SOLEIL: full componentization — one file per component wiring a
//     reified membrane; introspection and reconfiguration preserved.
//   - MERGE-ALL: component and membrane merged into one type per
//     functional component; direct dispatch, functional rebinding
//     kept.
//   - ULTRA-MERGE: the MERGE-ALL output is statically routed and then
//     collapsed into a single source file by a go/ast merge pass (the
//     analogue of the paper's Spoon source-to-source transformation).
package generate

import (
	"fmt"
	"sort"
	"strings"

	"soleil/internal/assembly"
	"soleil/internal/model"
	"soleil/internal/patterns"
	"soleil/internal/validate"
)

// plan is the precomputed generation plan: everything the templates
// need, resolved from the architecture.
type plan struct {
	Mode         assembly.Mode
	Package      string
	ArchName     string
	ImmortalSize int64
	Scopes       []scopeDecl
	Components   []compDecl
	Buffers      []bufferDecl
	Syncs        []syncDecl
	Threads      []threadDecl
	// ActivateRoots and DeliverOrder define the generated
	// Transaction: periodic/aperiodic actives to activate, then
	// sporadic actives to drain, producers before consumers.
	ActivateRoots []string
	DeliverOrder  []string
}

type scopeDecl struct {
	Var  string
	Name string
	Size int64
}

type compDecl struct {
	Var      string // Go variable name, e.g. productionLine
	GoName   string // exported Go name, e.g. ProductionLine
	Name     string // component name
	Type     string // generated content type, e.g. ProductionLineImpl
	Active   bool
	Sporadic bool
	Periodic bool
	PeriodNS int64
	// ClientCalls drive the generated stub contents: on activation or
	// invocation, the stub forwards through each client interface.
	ClientCalls []clientCall
	ServerItfs  []string
	// InboundBuffers lists the buffer variables draining into this
	// component.
	InboundBuffers []string
}

type clientCall struct {
	Itf   string
	Op    string
	Async bool
	// Static routing info (used by the ULTRA-MERGE templates, which
	// inline every route).
	ServerGoName string
	ServerVar    string
	ServerItf    string
	BufferVar    string        // async: the binding's buffer
	Pattern      patterns.Kind // sync: the binding's memory pattern
	ScopeExpr    string        // sync: server scope field expression
}

type bufferDecl struct {
	Var       string
	Name      string
	Cap       int
	AreaExpr  string // Go expression for the hosting area
	ServerVar string
	ServerItf string
	ClientVar string
	ClientItf string
}

type syncDecl struct {
	ClientVar string
	ClientItf string
	ServerVar string
	ServerItf string
	Pattern   patterns.Kind
	ScopeVar  string // non-empty for scope-entering patterns
}

type threadDecl struct {
	CompVar    string
	CompGoName string
	Name       string
	Kind       model.ThreadKind
	Priority   int
	Sporadic   bool
	Periodic   bool
	PeriodNS   int64
	DeadlineNS int64
	CostNS     int64
	AreaExpr   string
}

// goName converts a component name to an exported Go identifier.
func goName(name string) string {
	v := varName(name)
	if v == "" {
		return v
	}
	return strings.ToUpper(v[:1]) + v[1:]
}

// varName converts a component name to a Go identifier.
func varName(name string) string {
	var sb strings.Builder
	upper := false
	for i, r := range name {
		switch {
		case r == '_' || r == '-' || r == '.':
			upper = true
		case i == 0:
			sb.WriteRune(r | 0x20) // lower-case first ASCII letter
		case upper:
			sb.WriteRune(r &^ 0x20)
			upper = false
		default:
			sb.WriteRune(r)
		}
	}
	return sb.String()
}

// typeName derives the generated content type name for a component.
func typeName(c *model.Component) string {
	if c.Content() != "" {
		return c.Content()
	}
	return goName(c.Name()) + "Impl"
}

// buildPlan resolves the architecture into a generation plan. The
// architecture must validate cleanly.
func buildPlan(arch *model.Architecture, mode assembly.Mode, pkg string) (*plan, error) {
	if report := validate.Validate(arch); !report.OK() {
		errs := report.Errors()
		return nil, fmt.Errorf("generate: architecture violates RTSJ (%d errors; first: %s)",
			len(errs), errs[0])
	}
	p := &plan{Mode: mode, Package: pkg, ArchName: arch.Name()}

	scopeVars := make(map[string]string) // MemoryArea component -> scope var
	for _, ma := range arch.ComponentsOfKind(model.MemoryArea) {
		desc := ma.Area()
		switch desc.Kind {
		case model.ImmortalMemory:
			p.ImmortalSize += desc.Size
		case model.ScopedMemory:
			v := varName(ma.Name()) + "Scope"
			scopeVars[ma.Name()] = v
			p.Scopes = append(p.Scopes, scopeDecl{Var: v, Name: desc.ScopeName, Size: desc.Size})
		}
	}

	// areaExpr spells a component's area as a System-method expression
	// (used by the generated RunSimulation).
	areaExpr := func(c *model.Component) (string, error) {
		ma, err := arch.EffectiveMemoryArea(c)
		if err != nil {
			return "", err
		}
		switch ma.Area().Kind {
		case model.HeapMemory:
			return "s.Mem.Heap()", nil
		case model.ImmortalMemory:
			return "s.Mem.Immortal()", nil
		default:
			return "s." + scopeVars[ma.Name()], nil
		}
	}
	// bufferAreaExpr mirrors the deployer's buffer placement: the
	// client's nearest non-scoped area, forced into immortal memory
	// when either endpoint runs on a no-heap real-time thread.
	bufferAreaExpr := func(cli, srv *model.Component) (string, error) {
		for _, end := range []*model.Component{cli, srv} {
			if td, err := arch.EffectiveThreadDomain(end); err == nil &&
				td.Domain().Kind == model.NoHeapRealtimeThread {
				return "mem.Immortal()", nil
			}
		}
		ma, err := arch.EffectiveMemoryArea(cli)
		if err != nil {
			return "", err
		}
		for ma != nil && ma.Area().Kind == model.ScopedMemory {
			supers := ma.SupersOfKind(model.MemoryArea)
			if len(supers) == 0 {
				return "mem.Immortal()", nil
			}
			ma = supers[0]
		}
		if ma == nil || ma.Area().Kind == model.ImmortalMemory {
			return "mem.Immortal()", nil
		}
		return "mem.Heap()", nil
	}

	opFor := func(b *model.Binding) string {
		// The generated stubs use a deterministic operation name per
		// server interface.
		return "on" + goName(b.Server.Interface)
	}

	compIdx := make(map[string]int)
	for _, c := range arch.Components() {
		if c.Kind() != model.Active && c.Kind() != model.Passive {
			continue
		}
		cd := compDecl{
			Var:    varName(c.Name()),
			GoName: goName(c.Name()),
			Name:   c.Name(),
			Type:   typeName(c),
			Active: c.Kind() == model.Active,
		}
		if act := c.Activation(); act != nil {
			cd.Sporadic = act.Kind == model.SporadicActivation
			cd.Periodic = act.Kind == model.PeriodicActivation
			cd.PeriodNS = int64(act.Period)
		}
		for _, itf := range c.Interfaces() {
			if itf.Role == model.ServerRole {
				cd.ServerItfs = append(cd.ServerItfs, itf.Name)
			}
		}
		compIdx[c.Name()] = len(p.Components)
		p.Components = append(p.Components, cd)
	}

	bufIdx := 0
	for _, b := range arch.Bindings() {
		cli, _ := arch.Component(b.Client.Component)
		srv, _ := arch.Component(b.Server.Component)
		call := clientCall{
			Itf:          b.Client.Interface,
			Op:           opFor(b),
			Async:        b.Protocol == model.Asynchronous,
			ServerGoName: goName(srv.Name()),
			ServerVar:    varName(srv.Name()),
			ServerItf:    b.Server.Interface,
			Pattern:      patterns.Kind(b.Pattern),
		}
		switch b.Protocol {
		case model.Asynchronous:
			area, err := bufferAreaExpr(cli, srv)
			if err != nil {
				return nil, err
			}
			call.BufferVar = fmt.Sprintf("buf%d", bufIdx)
			p.Buffers = append(p.Buffers, bufferDecl{
				Var:       call.BufferVar,
				Name:      b.String(),
				Cap:       b.BufferSize,
				AreaExpr:  area,
				ServerVar: varName(srv.Name()),
				ServerItf: b.Server.Interface,
				ClientVar: varName(cli.Name()),
				ClientItf: b.Client.Interface,
			})
			if sidx, ok := compIdx[srv.Name()]; ok {
				p.Components[sidx].InboundBuffers = append(p.Components[sidx].InboundBuffers, call.BufferVar)
			}
			bufIdx++
		case model.Synchronous:
			sd := syncDecl{
				ClientVar: varName(cli.Name()),
				ClientItf: b.Client.Interface,
				ServerVar: varName(srv.Name()),
				ServerItf: b.Server.Interface,
				Pattern:   patterns.Kind(b.Pattern),
			}
			if sd.Pattern == patterns.ScopeEnter || sd.Pattern == patterns.Portal {
				srvArea, err := arch.EffectiveMemoryArea(srv)
				if err != nil {
					return nil, err
				}
				if v, ok := scopeVars[srvArea.Name()]; ok {
					sd.ScopeVar = v
				}
			}
			call.ScopeExpr = sd.ScopeVar
			p.Syncs = append(p.Syncs, sd)
		}
		idx, ok := compIdx[cli.Name()]
		if !ok {
			return nil, fmt.Errorf("generate: binding %s has non-primitive client", b)
		}
		p.Components[idx].ClientCalls = append(p.Components[idx].ClientCalls, call)
	}

	// Transaction driving order: activate the periodic/aperiodic
	// roots, then deliver the sporadic components in producer-before-
	// consumer order (Kahn over the async edges).
	for _, cd := range p.Components {
		if cd.Active && !cd.Sporadic {
			p.ActivateRoots = append(p.ActivateRoots, cd.GoName)
		}
	}
	pendingProducers := make(map[string]int) // sporadic GoName -> unprocessed producers
	consumers := make(map[string][]string)   // producer GoName -> sporadic consumers
	for _, cd := range p.Components {
		if cd.Active && cd.Sporadic {
			pendingProducers[cd.GoName] = 0
		}
	}
	for _, cd := range p.Components {
		for _, call := range cd.ClientCalls {
			if !call.Async {
				continue
			}
			if _, sporadic := pendingProducers[call.ServerGoName]; sporadic && cd.Active && cd.Sporadic {
				pendingProducers[call.ServerGoName]++
			}
			consumers[cd.GoName] = append(consumers[cd.GoName], call.ServerGoName)
		}
	}
	var queue []string
	for name, n := range pendingProducers {
		if n == 0 {
			queue = append(queue, name)
		}
	}
	sort.Strings(queue)
	done := make(map[string]bool)
	for len(queue) > 0 {
		name := queue[0]
		queue = queue[1:]
		if done[name] {
			continue
		}
		done[name] = true
		p.DeliverOrder = append(p.DeliverOrder, name)
		for _, next := range consumers[name] {
			if n, sporadic := pendingProducers[next]; sporadic {
				if n > 0 {
					pendingProducers[next] = n - 1
				}
				if pendingProducers[next] == 0 && !done[next] {
					queue = append(queue, next)
				}
			}
		}
	}
	// Any remaining sporadics (cycles) are appended in declaration
	// order; the generated Transaction drains them last.
	for _, cd := range p.Components {
		if cd.Active && cd.Sporadic && !done[cd.GoName] {
			p.DeliverOrder = append(p.DeliverOrder, cd.GoName)
		}
	}

	for _, c := range arch.ComponentsOfKind(model.Active) {
		td, err := arch.EffectiveThreadDomain(c)
		if err != nil {
			return nil, err
		}
		area, err := areaExpr(c)
		if err != nil {
			return nil, err
		}
		tdd := threadDecl{
			CompVar:    varName(c.Name()),
			CompGoName: goName(c.Name()),
			Name:       c.Name(),
			Kind:       td.Domain().Kind,
			Priority:   td.Domain().Priority,
			AreaExpr:   area,
		}
		if act := c.Activation(); act != nil {
			tdd.Sporadic = act.Kind == model.SporadicActivation
			tdd.Periodic = act.Kind == model.PeriodicActivation
			tdd.PeriodNS = int64(act.Period)
			tdd.DeadlineNS = int64(act.Deadline)
			tdd.CostNS = int64(act.Cost)
		}
		p.Threads = append(p.Threads, tdd)
	}

	sort.SliceStable(p.Threads, func(i, j int) bool { return p.Threads[i].Priority > p.Threads[j].Priority })
	return p, nil
}
