package generate

import "text/template"

// tmplInfraUltra is the ULTRA-MERGE-mode infrastructure: the whole
// system — functional stubs, activation, asynchronous plumbing and
// the RTSJ-dedicated code — merged into one purely static type. No
// binding tables, no locks, no reconfiguration capabilities.
var tmplInfraUltra = template.Must(template.New("infraUltra").Funcs(tmplFuncs).Parse(Header + `; mode ULTRA-MERGE. DO NOT EDIT.
//
// Generated execution infrastructure for architecture {{printf "%q" .ArchName}}:
// the whole resulting source merges into this single static unit. The
// functional implementations (stub counters below — replace their
// bodies) are embedded together with component activation, the
// asynchronous communication and the RTSJ-dedicated code.

package {{.Package}}

import (
	"fmt"
	"io"
	"time"

	"soleil/internal/comm"
	"soleil/internal/membrane"
	"soleil/internal/rtsj/memory"
	"soleil/internal/rtsj/sched"
	"soleil/internal/rtsj/thread"
)

var _ = comm.Refuse

// System is the generated, fully static execution infrastructure.
type System struct {
	Mem *memory.Runtime
{{- range .Scopes}}
	{{.Var}} *memory.Area
{{- end}}
{{- range .Components}}
	{{.Var}}Invocations int64
	{{.Var}}Activations int64
{{- end}}
{{- range .Buffers}}
	{{.Var}} *comm.RTBuffer
{{- end}}
{{- range .Components}}{{if .Sporadic}}
	{{.Var}}Task *sched.Task
{{- end}}{{end}}
}

// BuildSystem wires the complete infrastructure.
func BuildSystem() (*System, error) {
	s := &System{}
	s.Mem = memory.NewRuntime(memory.WithImmortalSize({{.ImmortalSize}}))
	mem := s.Mem
	_ = mem
{{- range .Scopes}}
	{
		a, err := mem.NewScoped({{printf "%q" .Name}}, {{.Size}})
		if err != nil {
			return nil, err
		}
		s.{{.Var}} = a
	}
{{- end}}
{{- range .Buffers}}
	{
		buf, err := comm.NewRTBuffer({{printf "%q" .Name}}, {{.Cap}}, comm.Refuse, {{.AreaExpr}}, 256)
		if err != nil {
			return nil, err
		}
		s.{{.Var}} = buf
	}
{{- end}}
	return s, nil
}
{{range .Components}}
// invoke{{.GoName}} is the statically routed invocation path of
// component {{.Name}} (functional stub merged with its outgoing
// routes — replace the counter with your implementation).
func (s *System) invoke{{.GoName}}(env *thread.Env, op string, arg any) (any, error) {
	s.{{.Var}}Invocations++
{{- range .ClientCalls}}
{{- if .Async}}
	if err := s.{{.BufferVar}}.Enqueue(env.Mem(), membrane.AsyncMessage{Interface: {{printf "%q" .ServerItf}}, Op: {{printf "%q" .Op}}, Arg: arg}); err != nil {
		return nil, err
	}
	if tc := env.Sched(); tc != nil && s.{{.ServerVar}}Task != nil {
		if err := tc.Fire(s.{{.ServerVar}}Task); err != nil {
			return nil, err
		}
	}
{{- else if .ScopeExpr}}
	if err := env.Mem().Enter(s.{{.ScopeExpr}}, func() error {
		_, err := s.invoke{{.ServerGoName}}(env, {{printf "%q" .Op}}, arg)
		return err
	}); err != nil {
		return nil, err
	}
{{- else}}
	if _, err := s.invoke{{.ServerGoName}}(env, {{printf "%q" .Op}}, arg); err != nil {
		return nil, err
	}
{{- end}}
{{- end}}
	return arg, nil
}
{{if .Active}}
// Activate{{.GoName}} runs one release of component {{.Name}}.
func (s *System) Activate{{.GoName}}(env *thread.Env) error {
	s.{{.Var}}Activations++
	n := s.{{.Var}}Activations
	_ = n
{{- range .ClientCalls}}
{{- if .Async}}
	if err := s.{{.BufferVar}}.Enqueue(env.Mem(), membrane.AsyncMessage{Interface: {{printf "%q" .ServerItf}}, Op: {{printf "%q" .Op}}, Arg: n}); err != nil {
		return err
	}
	if tc := env.Sched(); tc != nil && s.{{.ServerVar}}Task != nil {
		if err := tc.Fire(s.{{.ServerVar}}Task); err != nil {
			return err
		}
	}
{{- else if .ScopeExpr}}
	if err := env.Mem().Enter(s.{{.ScopeExpr}}, func() error {
		_, err := s.invoke{{.ServerGoName}}(env, {{printf "%q" .Op}}, n)
		return err
	}); err != nil {
		return err
	}
{{- else}}
	if _, err := s.invoke{{.ServerGoName}}(env, {{printf "%q" .Op}}, n); err != nil {
		return err
	}
{{- end}}
{{- end}}
	return nil
}

// Deliver{{.GoName}} drains the asynchronous messages pending for
// component {{.Name}}.
func (s *System) Deliver{{.GoName}}(env *thread.Env) (int, error) {
	total := 0
{{- $comp := .}}
{{- range .InboundBuffers}}
	for {
		v, ok, err := s.{{.}}.Dequeue(env.Mem())
		if err != nil {
			return total, err
		}
		if !ok {
			break
		}
		msg := v.(membrane.AsyncMessage)
		if _, err := s.invoke{{$comp.GoName}}(env, msg.Op, msg.Arg); err != nil {
			return total, err
		}
		total++
	}
{{- end}}
	return total, nil
}
{{end}}{{end}}
// Transaction drives one complete iteration of the system.
func (s *System) Transaction(env *thread.Env) error {
{{- range .ActivateRoots}}
	if err := s.Activate{{.}}(env); err != nil {
		return err
	}
{{- end}}
{{- range .DeliverOrder}}
	if _, err := s.Deliver{{.}}(env); err != nil {
		return err
	}
{{- end}}
	return nil
}

// RunSimulation executes the system on the simulated real-time
// scheduler until the virtual-time horizon.
func (s *System) RunSimulation(d time.Duration) error {
	sch := sched.New()
	rt := thread.NewRuntime(sch, s.Mem)
{{- range .Threads}}
	{
		th, err := rt.Spawn(thread.Config{
			Name:     {{printf "%q" .Name}},
			Kind:     {{threadKindExpr .Kind}},
			Priority: {{.Priority}},
			Release: sched.Release{
				{{- if .Periodic}}Kind: sched.Periodic, Period: time.Duration({{.PeriodNS}}),
				{{- else if .Sporadic}}Kind: sched.Sporadic, MinInterarrival: time.Duration({{.PeriodNS}}),
				{{- else}}Kind: sched.Aperiodic,
				{{- end}}
				{{- if .DeadlineNS}}
				Deadline: time.Duration({{.DeadlineNS}}),
				{{- end}}
				{{- if .CostNS}}
				Cost: time.Duration({{.CostNS}}),
				{{- end}}
			},
			InitialArea: {{.AreaExpr}},
			Run: func(env *thread.Env) {
				for {
{{- if .Sporadic}}
					if _, err := s.Deliver{{.CompGoName}}(env); err != nil {
						return
					}
					if !env.Sched().WaitForRelease() {
						return
					}
{{- else if .Periodic}}
					if err := s.Activate{{.CompGoName}}(env); err != nil {
						return
					}
					if !env.Sched().WaitForNextPeriod() {
						return
					}
{{- else}}
					_ = s.Activate{{.CompGoName}}(env)
					return
{{- end}}
				}
			},
		})
		if err != nil {
			return err
		}
{{- if .Sporadic}}
		s.{{.CompVar}}Task = th.Task()
{{- else}}
		_ = th
{{- end}}
	}
{{- end}}
	return sch.Run(d)
}

// Report prints the per-component activity counters.
func (s *System) Report(w io.Writer) {
{{- range .Components}}
	fmt.Fprintf(w, "%-24s invocations=%d\n", {{printf "%q" .Name}}, s.{{.Var}}Invocations)
{{- end}}
	f := s.Mem.Footprint()
	fmt.Fprintf(w, "memory: immortal=%dB heap=%dB scoped-budget=%dB\n",
		f.ImmortalBytes, f.HeapBytes, f.ScopedBudget)
}
`))
