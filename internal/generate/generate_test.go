package generate

import (
	"bytes"
	"fmt"
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"testing"

	"soleil/internal/assembly"
	"soleil/internal/fixture"
	"soleil/internal/model"
)

func motivation(t *testing.T) *model.Architecture {
	t.Helper()
	arch, err := fixture.MotivationExample()
	if err != nil {
		t.Fatal(err)
	}
	return arch
}

func TestVarAndGoNames(t *testing.T) {
	cases := map[string][2]string{
		"ProductionLine": {"productionLine", "ProductionLine"},
		"reg1":           {"reg1", "Reg1"},
		"my-comp_x":      {"myCompX", "MyCompX"},
	}
	for in, want := range cases {
		if got := varName(in); got != want[0] {
			t.Errorf("varName(%q) = %q", in, got)
		}
		if got := goName(in); got != want[1] {
			t.Errorf("goName(%q) = %q", in, got)
		}
	}
}

func TestBuildPlanMotivation(t *testing.T) {
	p, err := buildPlan(motivation(t), assembly.Soleil, "main")
	if err != nil {
		t.Fatal(err)
	}
	if p.ImmortalSize != 600<<10 {
		t.Fatalf("immortal = %d", p.ImmortalSize)
	}
	if len(p.Scopes) != 1 || p.Scopes[0].Name != "cscope" {
		t.Fatalf("scopes = %+v", p.Scopes)
	}
	if len(p.Components) != 4 {
		t.Fatalf("components = %d", len(p.Components))
	}
	if len(p.Buffers) != 2 || len(p.Syncs) != 1 {
		t.Fatalf("bindings = %d buffers, %d syncs", len(p.Buffers), len(p.Syncs))
	}
	if p.Syncs[0].ScopeVar == "" {
		t.Fatal("console sync lost its scope")
	}
	if len(p.Threads) != 3 {
		t.Fatalf("threads = %d", len(p.Threads))
	}
	// Threads sorted by descending priority: PL(30), MS(25), Audit(5).
	if p.Threads[0].Name != fixture.ProductionLine || p.Threads[2].Name != fixture.Audit {
		t.Fatalf("thread order: %s, %s, %s", p.Threads[0].Name, p.Threads[1].Name, p.Threads[2].Name)
	}
	if len(p.ActivateRoots) != 1 || p.ActivateRoots[0] != "ProductionLine" {
		t.Fatalf("roots = %v", p.ActivateRoots)
	}
	// Producer before consumer: MonitoringSystem before Audit.
	if len(p.DeliverOrder) != 2 || p.DeliverOrder[0] != "MonitoringSystem" || p.DeliverOrder[1] != "Audit" {
		t.Fatalf("deliver order = %v", p.DeliverOrder)
	}
}

func TestBuildPlanRejectsInvalid(t *testing.T) {
	a := model.NewArchitecture("bad")
	if _, err := a.NewActive("lonely", model.Activation{Kind: model.SporadicActivation}); err != nil {
		t.Fatal(err)
	}
	if _, err := buildPlan(a, assembly.Soleil, "main"); err == nil {
		t.Fatal("invalid architecture planned")
	}
}

func TestGenerateFileSets(t *testing.T) {
	arch := motivation(t)
	cases := []struct {
		mode      assembly.Mode
		wantFiles int // with main
	}{
		{assembly.Soleil, 7},     // contents + 4 components + infrastructure + main
		{assembly.MergeAll, 7},   // same file count, merged content
		{assembly.UltraMerge, 1}, // everything merged into one file
	}
	for _, c := range cases {
		files, err := Generate(arch, Options{Mode: c.mode, Main: true})
		if err != nil {
			t.Fatalf("%v: %v", c.mode, err)
		}
		if len(files) != c.wantFiles {
			names := make([]string, len(files))
			for i, f := range files {
				names[i] = f.Name
			}
			t.Fatalf("%v: %d files %v, want %d", c.mode, len(files), names, c.wantFiles)
		}
		for _, f := range files {
			if !bytes.HasPrefix(f.Content, []byte(Header)) {
				t.Errorf("%v: %s lacks the generation header", c.mode, f.Name)
			}
		}
		report := CheckRequirements(files, c.mode)
		if !report.OK() {
			var sb strings.Builder
			_ = report.Render(&sb)
			t.Errorf("%v requirements not met:\n%s", c.mode, sb.String())
		}
	}
}

func TestGenerateModeDifferences(t *testing.T) {
	arch := motivation(t)
	soleil, err := Generate(arch, Options{Mode: assembly.Soleil})
	if err != nil {
		t.Fatal(err)
	}
	merged, err := Generate(arch, Options{Mode: assembly.MergeAll})
	if err != nil {
		t.Fatal(err)
	}
	ultra, err := Generate(arch, Options{Mode: assembly.UltraMerge})
	if err != nil {
		t.Fatal(err)
	}
	all := func(files []File) string {
		var sb strings.Builder
		for _, f := range files {
			sb.Write(f.Content)
		}
		return sb.String()
	}
	if !strings.Contains(all(soleil), "membrane.New(") {
		t.Error("SOLEIL output does not reify membranes")
	}
	if strings.Contains(all(merged), "membrane.New(") {
		t.Error("MERGE-ALL output reifies membranes")
	}
	if !strings.Contains(all(merged), "BindingController") {
		t.Error("MERGE-ALL output lost functional rebinding")
	}
	u := all(ultra)
	if strings.Contains(u, "BindingController") || strings.Contains(u, "sync.Mutex") {
		t.Error("ULTRA-MERGE output is not static")
	}
	if !strings.Contains(u, "invokeMonitoringSystem") {
		t.Error("ULTRA-MERGE output lacks static routes")
	}
	// ULTRA-MERGE is the most compact.
	if lu, lm := countLines(ultra), countLines(merged); lu >= lm {
		t.Errorf("ULTRA lines %d >= MERGE-ALL lines %d", lu, lm)
	}
}

func TestGenerateOptionsValidation(t *testing.T) {
	arch := motivation(t)
	if _, err := Generate(arch, Options{Mode: assembly.Mode(9)}); err == nil {
		t.Fatal("unknown mode accepted")
	}
	if _, err := Generate(arch, Options{Mode: assembly.Soleil, Package: "pkg", Main: true}); err == nil {
		t.Fatal("main in non-main package accepted")
	}
}

func TestMergeFilesErrors(t *testing.T) {
	if _, err := MergeFiles(nil, "out.go", "main"); err == nil {
		t.Fatal("empty merge accepted")
	}
	if _, err := MergeFiles([]File{{Name: "x.go", Content: []byte("not go")}}, "out.go", "main"); err == nil {
		t.Fatal("unparsable file merged")
	}
	if _, err := MergeFiles([]File{{Name: "x.go", Content: []byte("package other\n")}}, "out.go", "main"); err == nil {
		t.Fatal("wrong package merged")
	}
}

// TestGeneratedProgramsCompileAndRun is the generator's end-to-end
// check: the generated infrastructure for every mode must compile with
// the host toolchain and execute the motivation example's transaction
// flow, both synchronously and on the simulated scheduler.
func TestGeneratedProgramsCompileAndRun(t *testing.T) {
	if testing.Short() {
		t.Skip("compiling generated programs is slow")
	}
	arch := motivation(t)
	for _, mode := range []assembly.Mode{assembly.Soleil, assembly.MergeAll, assembly.UltraMerge} {
		mode := mode
		t.Run(mode.String(), func(t *testing.T) {
			files, err := Generate(arch, Options{Mode: mode, Main: true})
			if err != nil {
				t.Fatal(err)
			}
			dir := filepath.Join("testdata", fmt.Sprintf("gen_%d", mode))
			if err := WriteFiles(dir, files); err != nil {
				t.Fatal(err)
			}
			t.Cleanup(func() { _ = os.RemoveAll(dir) })

			// The test runs in internal/generate; go run resolves the
			// generated package from the repo root.
			root, err := filepath.Abs(filepath.Join("..", ".."))
			if err != nil {
				t.Fatal(err)
			}
			run := func(args ...string) string {
				t.Helper()
				pkg := "./" + filepath.ToSlash(filepath.Join("internal", "generate", dir))
				cmd := exec.Command("go", append([]string{"run", pkg}, args...)...)
				cmd.Dir = root
				out, err := cmd.CombinedOutput()
				if err != nil {
					t.Fatalf("go run (%v): %v\n%s", args, err, out)
				}
				return string(out)
			}

			// Synchronous transactions: 100 iterations -> the line
			// produced 100, the monitor and audit each served 100.
			out := run("-iterations", "100")
			for _, want := range []string{
				"MonitoringSystem         invocations=100",
				"Audit                    invocations=100",
				"Console", // displayed on every invocation of the stub chain? see below
			} {
				if !strings.Contains(out, want) {
					t.Errorf("sync output missing %q:\n%s", want, out)
				}
			}

			// Scheduled simulation: 95ms of virtual time with a 10ms
			// production period -> 10 releases flow through the system.
			out = run("-sim", "95ms")
			if !strings.Contains(out, "MonitoringSystem         invocations=10") {
				t.Errorf("sim output unexpected:\n%s", out)
			}
		})
	}
}
