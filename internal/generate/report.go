package generate

import (
	"bytes"
	"fmt"
	"io"
	"strings"

	"soleil/internal/assembly"
)

// Requirement is one of the code-generation requirements of Bordin &
// Vardanega [6] that Sect. 5.2 confronts the generator against.
type Requirement struct {
	ID          string
	Description string
	Met         bool
	Evidence    string
}

// Report summarizes a generated file set against the requirements.
type Report struct {
	Mode  assembly.Mode
	Files int
	Lines int
	Reqs  []Requirement
}

// OK reports whether every requirement is met.
func (r Report) OK() bool {
	for _, req := range r.Reqs {
		if !req.Met {
			return false
		}
	}
	return true
}

// Render writes the report as text.
func (r Report) Render(w io.Writer) error {
	if _, err := fmt.Fprintf(w, "mode %v: %d files, %d lines\n", r.Mode, r.Files, r.Lines); err != nil {
		return err
	}
	for _, req := range r.Reqs {
		status := "MET "
		if !req.Met {
			status = "MISS"
		}
		if _, err := fmt.Fprintf(w, "  [%s] %s: %s (%s)\n", status, req.ID, req.Description, req.Evidence); err != nil {
			return err
		}
	}
	return nil
}

func countLines(files []File) int {
	total := 0
	for _, f := range files {
		total += bytes.Count(f.Content, []byte("\n"))
	}
	return total
}

// CheckRequirements evaluates a generated file set against the [6]
// requirements the paper claims to meet (Sect. 5.2):
//
//   - CG1 separation of concerns: manually-written content lives in
//     clearly identified units, apart from the infrastructure;
//   - CG2 compactness: the most optimized mode collapses to a single
//     compilation unit;
//   - CG3 generated vs. manual distinction: every generated file is
//     marked as such;
//   - CG4 functional vs. non-functional separation: RTSJ code
//     (areas, buffers, threads) is not interleaved with the content
//     units.
func CheckRequirements(files []File, mode assembly.Mode) Report {
	r := Report{Mode: mode, Files: len(files), Lines: countLines(files)}

	// CG1: content units identified.
	var cg1 Requirement
	cg1.ID, cg1.Description = "CG1", "separation of concerns (content in identified units)"
	switch mode {
	case assembly.UltraMerge:
		cg1.Met = containsIn(files, "replace the counter with your implementation") ||
			containsIn(files, "functional stubs")
		cg1.Evidence = "content stubs carry replacement markers inside the merged unit"
	default:
		cg1.Met = hasFile(files, "contents.go")
		cg1.Evidence = "contents.go isolates every content stub"
	}
	r.Reqs = append(r.Reqs, cg1)

	// CG2: compactness of the most optimized mode.
	cg2 := Requirement{ID: "CG2", Description: "compact generated code"}
	switch mode {
	case assembly.UltraMerge:
		nonMain := 0
		for _, f := range files {
			if f.Name != "main.go" {
				nonMain++
			}
		}
		cg2.Met = nonMain == 1
		cg2.Evidence = fmt.Sprintf("%d infrastructure file(s)", nonMain)
	default:
		cg2.Met = true
		cg2.Evidence = fmt.Sprintf("%d files, %d lines (compactness enforced in ULTRA-MERGE)", len(files), r.Lines)
	}
	r.Reqs = append(r.Reqs, cg2)

	// CG3: generated files marked.
	cg3 := Requirement{ID: "CG3", Description: "generated code clearly distinguished"}
	cg3.Met = true
	for _, f := range files {
		if !bytes.HasPrefix(f.Content, []byte(Header)) {
			cg3.Met = false
			cg3.Evidence = f.Name + " lacks the generation header"
			break
		}
	}
	if cg3.Met {
		cg3.Evidence = fmt.Sprintf("all %d files start with %q", len(files), Header)
	}
	r.Reqs = append(r.Reqs, cg3)

	// CG4: functional / non-functional separation.
	cg4 := Requirement{ID: "CG4", Description: "functional and non-functional semantics separated"}
	switch mode {
	case assembly.UltraMerge:
		// ULTRA-MERGE deliberately trades this at the source level;
		// the separation survives in the metamodel (ThreadDomain and
		// MemoryArea components), which is how the paper argues the
		// requirement is inherently met.
		cg4.Met = true
		cg4.Evidence = "separation held at the metamodel level (ThreadDomain/MemoryArea)"
	default:
		cg4.Met = true
		for _, f := range files {
			if f.Name == "contents.go" &&
				(bytes.Contains(f.Content, []byte("memory.NewRuntime")) ||
					bytes.Contains(f.Content, []byte("sched.New"))) {
				cg4.Met = false
				cg4.Evidence = "contents.go manipulates RTSJ infrastructure"
			}
		}
		if cg4.Met {
			cg4.Evidence = "content units contain no RTSJ infrastructure code"
		}
	}
	r.Reqs = append(r.Reqs, cg4)
	return r
}

func hasFile(files []File, name string) bool {
	for _, f := range files {
		if f.Name == name {
			return true
		}
	}
	return false
}

func containsIn(files []File, needle string) bool {
	for _, f := range files {
		if strings.Contains(string(f.Content), needle) {
			return true
		}
	}
	return false
}
