package generate

import "text/template"

// tmplInfraMerged is the MERGE-ALL-mode infrastructure: merged
// component types (see tmplComponentMerged), direct dispatch with
// inlined patterns, functional-level rebinding preserved.
var tmplInfraMerged = template.Must(template.New("infraMerged").Funcs(tmplFuncs).Parse(Header + `; mode MERGE-ALL. DO NOT EDIT.
//
// Generated execution infrastructure for architecture {{printf "%q" .ArchName}}:
// each component is merged with its membrane into a single type; the
// interceptor indirections of the SOLEIL mode are replaced by direct
// calls. Functional-level rebinding remains available through the
// components' binding controllers.

package {{.Package}}

import (
	"fmt"
	"io"
	"time"

	"soleil/internal/comm"
	"soleil/internal/membrane"
	"soleil/internal/patterns"
	"soleil/internal/rtsj/memory"
	"soleil/internal/rtsj/sched"
	"soleil/internal/rtsj/thread"
)

var (
	_ = patterns.None
	_ = comm.Refuse
)

// syncRoute adapts an inlined synchronous route to the port contract
// (so merged components stay rebindable).
type syncRoute struct {
	invoke func(env *thread.Env, op string, arg any) (any, error)
}

func (r *syncRoute) Call(env *thread.Env, op string, arg any) (any, error) {
	return r.invoke(env, op, arg)
}

func (r *syncRoute) Send(env *thread.Env, op string, arg any) error {
	return fmt.Errorf("synchronous binding; use Call")
}

// System is the generated execution infrastructure.
type System struct {
	Mem *memory.Runtime
{{- range .Scopes}}
	{{.Var}} *memory.Area
{{- end}}
{{- range .Components}}
	{{.Var}} *{{.GoName}}Component
{{- end}}
{{- range .Buffers}}
	{{.Var}} *comm.RTBuffer
	{{.Var}}Stub *membrane.AsyncStub
{{- end}}
}

// BuildSystem wires the complete infrastructure and bootstraps it.
func BuildSystem() (*System, error) {
	s := &System{}
	s.Mem = memory.NewRuntime(memory.WithImmortalSize({{.ImmortalSize}}))
	mem := s.Mem
	_ = mem
{{- range .Scopes}}
	{
		a, err := mem.NewScoped({{printf "%q" .Name}}, {{.Size}})
		if err != nil {
			return nil, err
		}
		s.{{.Var}} = a
	}
{{- end}}
{{- range .Components}}
	s.{{.Var}} = new{{.GoName}}Component(&{{.Type}}{})
{{- end}}
{{- range .Buffers}}
	{
		buf, err := comm.NewRTBuffer({{printf "%q" .Name}}, {{.Cap}}, comm.Refuse, {{.AreaExpr}}, 256)
		if err != nil {
			return nil, err
		}
		s.{{.Var}} = buf
		stub, err := membrane.NewAsyncStub(buf, {{printf "%q" .ServerItf}})
		if err != nil {
			return nil, err
		}
		s.{{.Var}}Stub = stub
		if err := s.{{.ClientVar}}.binds.Bind({{printf "%q" .ClientItf}}, stub); err != nil {
			return nil, err
		}
		s.{{.ServerVar}}.inbound = append(s.{{.ServerVar}}.inbound, buf)
	}
{{- end}}
{{- range .Syncs}}
	{
		srv := s.{{.ServerVar}}
		route := &syncRoute{invoke: func(env *thread.Env, op string, arg any) (any, error) {
{{- if .ScopeVar}}
			var out any
			err := patterns.EnterAndCall(env.Mem(), s.{{.ScopeVar}}, func() error {
				v, err := srv.Invoke(env, {{printf "%q" .ServerItf}}, op, arg)
				out = v
				return err
			})
			return patterns.CopyValue(out), err
{{- else if .Pattern}}
			v, err := srv.Invoke(env, {{printf "%q" .ServerItf}}, op, patterns.CopyValue(arg))
			return patterns.CopyValue(v), err
{{- else}}
			return srv.Invoke(env, {{printf "%q" .ServerItf}}, op, arg)
{{- end}}
		}}
		if err := s.{{.ClientVar}}.binds.Bind({{printf "%q" .ClientItf}}, route); err != nil {
			return nil, err
		}
	}
{{- end}}
	// Bootstrap: passive services first, then active producers.
{{- range .Components}}{{if not .Active}}
	if err := s.{{.Var}}.Init(); err != nil {
		return nil, err
	}
{{- end}}{{end}}
{{- range .Components}}{{if .Active}}
	if err := s.{{.Var}}.Init(); err != nil {
		return nil, err
	}
{{- end}}{{end}}
	return s, nil
}
{{range .Components}}{{if .Active}}
// Activate{{.GoName}} runs one release of component {{.Name}}.
func (s *System) Activate{{.GoName}}(env *thread.Env) error {
	return s.{{.Var}}.content.Activate(env)
}

// Deliver{{.GoName}} drains the asynchronous messages pending for
// component {{.Name}}.
func (s *System) Deliver{{.GoName}}(env *thread.Env) (int, error) {
	return s.{{.Var}}.Deliver(env)
}
{{end}}{{end}}
// Transaction drives one complete iteration of the system.
func (s *System) Transaction(env *thread.Env) error {
{{- range .ActivateRoots}}
	if err := s.Activate{{.}}(env); err != nil {
		return err
	}
{{- end}}
{{- range .DeliverOrder}}
	if _, err := s.Deliver{{.}}(env); err != nil {
		return err
	}
{{- end}}
	return nil
}

// RunSimulation executes the system on the simulated real-time
// scheduler until the virtual-time horizon.
func (s *System) RunSimulation(d time.Duration) error {
	sch := sched.New()
	rt := thread.NewRuntime(sch, s.Mem)
	tasks := make(map[string]*sched.Task)
{{- range .Threads}}
	{
		th, err := rt.Spawn(thread.Config{
			Name:     {{printf "%q" .Name}},
			Kind:     {{threadKindExpr .Kind}},
			Priority: {{.Priority}},
			Release: sched.Release{
				{{- if .Periodic}}Kind: sched.Periodic, Period: time.Duration({{.PeriodNS}}),
				{{- else if .Sporadic}}Kind: sched.Sporadic, MinInterarrival: time.Duration({{.PeriodNS}}),
				{{- else}}Kind: sched.Aperiodic,
				{{- end}}
				{{- if .DeadlineNS}}
				Deadline: time.Duration({{.DeadlineNS}}),
				{{- end}}
				{{- if .CostNS}}
				Cost: time.Duration({{.CostNS}}),
				{{- end}}
			},
			InitialArea: {{.AreaExpr}},
			Run: func(env *thread.Env) {
				for {
{{- if .Sporadic}}
					if _, err := s.Deliver{{.CompGoName}}(env); err != nil {
						return
					}
					if !env.Sched().WaitForRelease() {
						return
					}
{{- else if .Periodic}}
					if err := s.Activate{{.CompGoName}}(env); err != nil {
						return
					}
					if !env.Sched().WaitForNextPeriod() {
						return
					}
{{- else}}
					_ = s.Activate{{.CompGoName}}(env)
					return
{{- end}}
				}
			},
		})
		if err != nil {
			return err
		}
		tasks[{{printf "%q" .CompVar}}] = th.Task()
	}
{{- end}}
{{- range .Buffers}}
	if t := tasks[{{printf "%q" .ServerVar}}]; t != nil {
		err := s.{{.ClientVar}}.binds.Bind({{printf "%q" .ClientItf}},
			&membrane.FirePort{Inner: s.{{.Var}}Stub, Task: t})
		if err != nil {
			return err
		}
	}
{{- end}}
	return sch.Run(d)
}

// Report prints the per-component activity counters.
func (s *System) Report(w io.Writer) {
{{- range .Components}}
	fmt.Fprintf(w, "%-24s invocations=%d\n", {{printf "%q" .Name}}, s.{{.Var}}.content.Invocations())
{{- end}}
	f := s.Mem.Footprint()
	fmt.Fprintf(w, "memory: immortal=%dB heap=%dB scoped-budget=%dB\n",
		f.ImmortalBytes, f.HeapBytes, f.ScopedBudget)
}
`))
