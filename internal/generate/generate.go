package generate

import (
	"bytes"
	"fmt"
	"go/format"
	"os"
	"path/filepath"
	"text/template"

	"soleil/internal/assembly"
	"soleil/internal/model"
)

// tmplMain generates the runnable entry point.
var tmplMain = template.Must(template.New("main").Parse(Header + `; mode {{.Mode}}. DO NOT EDIT.

package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"soleil/internal/rtsj/memory"
	"soleil/internal/rtsj/thread"
)

func main() {
	iterations := flag.Int("iterations", 1000, "transactions to drive synchronously")
	sim := flag.Duration("sim", 0, "run the scheduled simulation for this virtual duration instead")
	flag.Parse()
	if err := run(*iterations, *sim); err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
}

func run(iterations int, sim time.Duration) error {
	sys, err := BuildSystem()
	if err != nil {
		return err
	}
	if sim > 0 {
		if err := sys.RunSimulation(sim); err != nil {
			return err
		}
	} else {
		ctx, err := memory.NewContext(sys.Mem.Immortal(), false)
		if err != nil {
			return err
		}
		defer ctx.Close()
		env := thread.NewEnv(nil, ctx)
		for i := 0; i < iterations; i++ {
			if err := sys.Transaction(env); err != nil {
				return fmt.Errorf("transaction %d: %w", i, err)
			}
		}
	}
	sys.Report(os.Stdout)
	return nil
}
`))

// File is one generated source file.
type File struct {
	Name    string
	Content []byte
}

// Options configures generation.
type Options struct {
	Mode assembly.Mode
	// Package is the generated package name (default "main").
	Package string
	// Main adds a runnable entry point (package must be "main").
	Main bool
}

// Generate produces the execution-infrastructure source for the
// architecture in the configured mode. All files are gofmt-formatted;
// the ULTRA-MERGE mode runs the go/ast merge pass so the result is a
// single file (plus the optional main).
func Generate(arch *model.Architecture, opts Options) ([]File, error) {
	if opts.Package == "" {
		opts.Package = "main"
	}
	p, err := buildPlan(arch, opts.Mode, opts.Package)
	if err != nil {
		return nil, err
	}
	var files []File
	emit := func(name string, tmpl *template.Template, data any) error {
		var buf bytes.Buffer
		if err := tmpl.Execute(&buf, data); err != nil {
			return fmt.Errorf("generate: %s: %w", name, err)
		}
		src, err := format.Source(buf.Bytes())
		if err != nil {
			return fmt.Errorf("generate: %s does not compile-format: %w\n%s", name, err, buf.String())
		}
		files = append(files, File{Name: name, Content: src})
		return nil
	}

	type compData struct {
		compDecl
		Pkg string
	}

	switch opts.Mode {
	case assembly.Soleil:
		if err := emit("contents.go", tmplContents, p); err != nil {
			return nil, err
		}
		for _, c := range p.Components {
			name := fmt.Sprintf("component_%s.go", c.Var)
			if err := emit(name, tmplComponentSoleil, compData{compDecl: c, Pkg: opts.Package}); err != nil {
				return nil, err
			}
		}
		if err := emit("infrastructure.go", tmplInfraSoleil, p); err != nil {
			return nil, err
		}
	case assembly.MergeAll:
		if err := emit("contents.go", tmplContents, p); err != nil {
			return nil, err
		}
		for _, c := range p.Components {
			name := fmt.Sprintf("component_%s.go", c.Var)
			if err := emit(name, tmplComponentMerged, compData{compDecl: c, Pkg: opts.Package}); err != nil {
				return nil, err
			}
		}
		if err := emit("infrastructure.go", tmplInfraMerged, p); err != nil {
			return nil, err
		}
	case assembly.UltraMerge:
		if err := emit("infrastructure.go", tmplInfraUltra, p); err != nil {
			return nil, err
		}
		if opts.Main {
			if opts.Package != "main" {
				return nil, fmt.Errorf("generate: a main entry point needs package main, got %q", opts.Package)
			}
			if err := emit("main.go", tmplMain, p); err != nil {
				return nil, err
			}
		}
		// The whole resulting source merges into one unique file —
		// the paper's ULTRA-MERGE compactness property.
		merged, err := MergeFiles(files, "ultramerge.go", opts.Package)
		if err != nil {
			return nil, err
		}
		return []File{merged}, nil
	default:
		return nil, fmt.Errorf("generate: unknown mode %v", opts.Mode)
	}

	if opts.Main {
		if opts.Package != "main" {
			return nil, fmt.Errorf("generate: a main entry point needs package main, got %q", opts.Package)
		}
		if err := emit("main.go", tmplMain, p); err != nil {
			return nil, err
		}
	}
	return files, nil
}

// WriteFiles writes the generated files into dir, creating it if
// needed.
func WriteFiles(dir string, files []File) error {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return err
	}
	for _, f := range files {
		if err := os.WriteFile(filepath.Join(dir, f.Name), f.Content, 0o644); err != nil {
			return err
		}
	}
	return nil
}
