package comm

import (
	"errors"
	"fmt"
	"testing"

	"soleil/internal/qos"
)

// TestErrFullUnwrapsToBackpressure pins the sentinel chain the whole
// framework relies on: a full buffer is a backpressure event, so
// callers watching qos.ErrBackpressure see it without importing comm.
func TestErrFullUnwrapsToBackpressure(t *testing.T) {
	if !errors.Is(ErrFull, qos.ErrBackpressure) {
		t.Fatal("ErrFull must unwrap to qos.ErrBackpressure")
	}
}

// TestErrFullMatchesThroughWrapping is the regression test for the
// error-comparison audit: Enqueue annotates ErrFull with the buffer
// name and capacity via %w, and callers often wrap again. errors.Is
// must keep matching through both layers — and the test documents why
// a bare == comparison is a bug, not a style choice.
func TestErrFullMatchesThroughWrapping(t *testing.T) {
	once := fmt.Errorf("%w: telemetry (capacity 8)", ErrFull)
	twice := fmt.Errorf("send: %w", once)

	for _, err := range []error{once, twice} {
		if !errors.Is(err, ErrFull) {
			t.Errorf("errors.Is(%v, ErrFull) = false", err)
		}
		if !errors.Is(err, qos.ErrBackpressure) {
			t.Errorf("errors.Is(%v, qos.ErrBackpressure) = false", err)
		}
		if err == ErrFull { //nolint:errorlint // deliberate: proving == fails
			t.Errorf("wrapped error compares == to ErrFull; wrapping is broken")
		}
	}
}

// TestEnqueueErrorIdentity drives a real buffer to capacity and checks
// the error it returns matches through errors.Is even though Enqueue
// returns a wrapped, annotated value rather than the bare sentinel.
func TestEnqueueErrorIdentity(t *testing.T) {
	b, err := NewBuffer("sentinel", 1, Refuse)
	if err != nil {
		t.Fatal(err)
	}
	if err := b.Enqueue("a"); err != nil {
		t.Fatalf("first enqueue: %v", err)
	}
	err = b.Enqueue("b")
	if err == nil {
		t.Fatal("second enqueue on a capacity-1 Refuse buffer must fail")
	}
	if err == ErrFull { //nolint:errorlint // deliberate: proving == fails
		t.Error("Enqueue returned the bare sentinel; annotation was lost")
	}
	if !errors.Is(err, ErrFull) || !errors.Is(err, qos.ErrBackpressure) {
		t.Errorf("Enqueue error %v must unwrap to ErrFull and qos.ErrBackpressure", err)
	}
}
