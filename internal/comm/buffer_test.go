package comm

import (
	"errors"
	"testing"
	"testing/quick"

	"soleil/internal/rtsj/memory"
)

func TestNewBufferValidation(t *testing.T) {
	if _, err := NewBuffer("b", 0, Refuse); err == nil {
		t.Error("zero capacity accepted")
	}
	if _, err := NewBuffer("b", -1, Refuse); err == nil {
		t.Error("negative capacity accepted")
	}
	if _, err := NewBuffer("b", 4, OverflowPolicy(9)); err == nil {
		t.Error("unknown policy accepted")
	}
}

func TestBufferFIFO(t *testing.T) {
	b, err := NewBuffer("b", 4, Refuse)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 4; i++ {
		if err := b.Enqueue(i); err != nil {
			t.Fatal(err)
		}
	}
	if b.Len() != 4 || b.Cap() != 4 || b.Name() != "b" {
		t.Fatal("accessors")
	}
	for i := 0; i < 4; i++ {
		v, ok := b.Dequeue()
		if !ok || v != i {
			t.Fatalf("dequeue %d = %v, %v", i, v, ok)
		}
	}
	if _, ok := b.Dequeue(); ok {
		t.Fatal("dequeue from empty succeeded")
	}
}

func TestBufferRefuse(t *testing.T) {
	b, _ := NewBuffer("b", 2, Refuse)
	_ = b.Enqueue(1)
	_ = b.Enqueue(2)
	err := b.Enqueue(3)
	if !errors.Is(err, ErrFull) {
		t.Fatalf("overflow err = %v", err)
	}
	st := b.Stats()
	if st.Enqueued != 2 || st.Dropped != 1 || st.MaxDepth != 2 {
		t.Fatalf("stats = %+v", st)
	}
}

func TestBufferDropOldest(t *testing.T) {
	b, _ := NewBuffer("b", 2, DropOldest)
	for i := 1; i <= 3; i++ {
		if err := b.Enqueue(i); err != nil {
			t.Fatal(err)
		}
	}
	v, _ := b.Dequeue()
	if v != 2 {
		t.Fatalf("after drop-oldest got %v, want 2", v)
	}
	if st := b.Stats(); st.Dropped != 1 {
		t.Fatalf("dropped = %d", st.Dropped)
	}
}

func TestBufferDropNewest(t *testing.T) {
	b, _ := NewBuffer("b", 2, DropNewest)
	for i := 1; i <= 3; i++ {
		if err := b.Enqueue(i); err != nil {
			t.Fatal(err)
		}
	}
	v, _ := b.Dequeue()
	if v != 1 {
		t.Fatalf("after drop-newest got %v, want 1", v)
	}
}

func TestOnEnqueueCallback(t *testing.T) {
	b, _ := NewBuffer("b", 2, Refuse)
	var fired int
	b.OnEnqueue(func() { fired++ })
	_ = b.Enqueue(1)
	_ = b.Enqueue(2)
	if err := b.Enqueue(3); err == nil {
		t.Fatal("overflow accepted")
	}
	if fired != 2 {
		t.Fatalf("callback fired %d times, want 2", fired)
	}
}

// Property: any interleaving of enqueues and dequeues preserves FIFO
// order and never exceeds capacity.
func TestBufferFIFOProperty(t *testing.T) {
	f := func(ops []bool, cap8 uint8) bool {
		capacity := int(cap8%8) + 1
		b, err := NewBuffer("b", capacity, Refuse)
		if err != nil {
			return false
		}
		next, expect := 0, 0
		for _, enq := range ops {
			if enq {
				if err := b.Enqueue(next); err == nil {
					next++
				} else if !errors.Is(err, ErrFull) {
					return false
				}
			} else if v, ok := b.Dequeue(); ok {
				if v != expect {
					return false
				}
				expect++
			}
			if b.Len() > capacity {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

// --- RTBuffer -------------------------------------------------------------------

type payload struct {
	seq  int
	data [4]byte
}

func newRT(t *testing.T) (*memory.Runtime, *RTBuffer) {
	t.Helper()
	rt := memory.NewRuntime()
	b, err := NewRTBuffer("pl->ms", 10, Refuse, rt.Immortal(), 64)
	if err != nil {
		t.Fatal(err)
	}
	return rt, b
}

func TestNewRTBufferValidation(t *testing.T) {
	rt := memory.NewRuntime()
	if _, err := NewRTBuffer("b", 4, Refuse, nil, 8); err == nil {
		t.Error("nil area accepted")
	}
	s, _ := rt.NewScoped("s", 1024)
	if _, err := NewRTBuffer("b", 4, Refuse, s, 8); err == nil {
		t.Error("scoped area accepted")
	}
	if _, err := NewRTBuffer("b", 4, Refuse, rt.Immortal(), 0); err == nil {
		t.Error("zero slot size accepted")
	}
	if _, err := NewRTBuffer("b", 0, Refuse, rt.Immortal(), 8); err == nil {
		t.Error("zero capacity accepted")
	}
}

func TestRTBufferPreallocatesSlots(t *testing.T) {
	rt, b := newRT(t)
	if got := rt.Immortal().Consumed(); got != 10*64 {
		t.Fatalf("preallocated bytes = %d, want 640", got)
	}
	if b.Area() != rt.Immortal() || b.Cap() != 10 || b.Name() != "pl->ms" {
		t.Fatal("accessors")
	}
}

func TestRTBufferSteadyStateAllocatesNothing(t *testing.T) {
	rt, b := newRT(t)
	ctx, err := memory.NewContext(rt.Immortal(), true)
	if err != nil {
		t.Fatal(err)
	}
	defer ctx.Close()
	before := rt.Immortal().Consumed()
	for i := 0; i < 100; i++ {
		if err := b.Enqueue(ctx, payload{seq: i}); err != nil {
			t.Fatal(err)
		}
		v, ok, err := b.Dequeue(ctx)
		if err != nil || !ok {
			t.Fatalf("dequeue %d: %v, %v", i, ok, err)
		}
		if v.(payload).seq != i {
			t.Fatalf("message %d corrupted: %v", i, v)
		}
	}
	if got := rt.Immortal().Consumed(); got != before {
		t.Fatalf("steady-state consumption changed: %d -> %d", before, got)
	}
	st := b.Stats()
	if st.Enqueued != 100 || st.Dequeued != 100 {
		t.Fatalf("stats = %+v", st)
	}
}

func TestRTBufferNoHeapProducerOnHeapBuffer(t *testing.T) {
	rt := memory.NewRuntime()
	b, err := NewRTBuffer("b", 4, Refuse, rt.Heap(), 32)
	if err != nil {
		t.Fatal(err)
	}
	nhrt, err := memory.NewContext(rt.Immortal(), true)
	if err != nil {
		t.Fatal(err)
	}
	defer nhrt.Close()
	var access *memory.MemoryAccessError
	if err := b.Enqueue(nhrt, payload{}); !errors.As(err, &access) {
		t.Fatalf("NHRT enqueue to heap buffer: %v", err)
	}
	// A regular producer works; an NHRT consumer then faults on read.
	reg, err := memory.NewContext(rt.Heap(), false)
	if err != nil {
		t.Fatal(err)
	}
	defer reg.Close()
	if err := b.Enqueue(reg, payload{seq: 1}); err != nil {
		t.Fatal(err)
	}
	if _, _, err := b.Dequeue(nhrt); !errors.As(err, &access) {
		t.Fatalf("NHRT dequeue from heap buffer: %v", err)
	}
}

func TestRTBufferOverflow(t *testing.T) {
	rt := memory.NewRuntime()
	b, err := NewRTBuffer("b", 2, Refuse, rt.Immortal(), 16)
	if err != nil {
		t.Fatal(err)
	}
	ctx, err := memory.NewContext(rt.Immortal(), false)
	if err != nil {
		t.Fatal(err)
	}
	defer ctx.Close()
	_ = b.Enqueue(ctx, 1)
	_ = b.Enqueue(ctx, 2)
	if err := b.Enqueue(ctx, 3); !errors.Is(err, ErrFull) {
		t.Fatalf("overflow = %v", err)
	}
	if _, ok, _ := b.Dequeue(ctx); !ok {
		t.Fatal("dequeue failed")
	}
	if v, ok, _ := b.Dequeue(ctx); !ok || v != 2 {
		t.Fatalf("order broken: %v", v)
	}
	if _, ok, _ := b.Dequeue(ctx); ok {
		t.Fatal("empty dequeue succeeded")
	}
}

func TestRTBufferDropOldestSlotReuse(t *testing.T) {
	rt := memory.NewRuntime()
	b, err := NewRTBuffer("b", 2, DropOldest, rt.Immortal(), 16)
	if err != nil {
		t.Fatal(err)
	}
	ctx, err := memory.NewContext(rt.Immortal(), false)
	if err != nil {
		t.Fatal(err)
	}
	defer ctx.Close()
	for i := 1; i <= 5; i++ {
		if err := b.Enqueue(ctx, i); err != nil {
			t.Fatal(err)
		}
	}
	v1, ok1, _ := b.Dequeue(ctx)
	v2, ok2, _ := b.Dequeue(ctx)
	if !ok1 || !ok2 || v1 != 4 || v2 != 5 {
		t.Fatalf("drop-oldest kept %v, %v; want 4, 5", v1, v2)
	}
}

func TestStatsReportsInstantDepth(t *testing.T) {
	b, _ := NewBuffer("b", 4, Refuse)
	if got := b.Stats().Depth; got != 0 {
		t.Fatalf("empty depth = %d", got)
	}
	_ = b.Enqueue(1)
	_ = b.Enqueue(2)
	_ = b.Enqueue(3)
	if st := b.Stats(); st.Depth != 3 || st.MaxDepth != 3 {
		t.Fatalf("stats = %+v", st)
	}
	b.Dequeue()
	b.Dequeue()
	// Depth tracks the instantaneous length; MaxDepth stays the high
	// watermark.
	if st := b.Stats(); st.Depth != 1 || st.MaxDepth != 3 {
		t.Fatalf("stats after drain = %+v", st)
	}
}
