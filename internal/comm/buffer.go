// Package comm implements the communication substrate of the
// framework: the bounded message buffers behind asynchronous bindings
// (the ADL's bufferSize attribute) in two flavours — a plain ring
// buffer used by the hand-written OO baseline and the merged
// generation modes, and an RTSJ-checked buffer whose slots live in a
// memory area and whose transfers follow the deep-copy pattern.
package comm

import (
	"fmt"
	"sync"

	"soleil/internal/patterns"
	"soleil/internal/qos"
	"soleil/internal/rtsj/memory"
)

// ErrFull is returned by Enqueue when the buffer is at capacity and
// the policy is Refuse. It wraps the framework-wide backpressure
// sentinel, so errors.Is(err, qos.ErrBackpressure) recognizes a full
// buffer together with every other overload rejection.
var ErrFull = fmt.Errorf("comm: buffer full: %w", qos.ErrBackpressure)

// OverflowPolicy selects what Enqueue does on a full buffer.
type OverflowPolicy int

// Overflow policies.
const (
	// Refuse rejects the new message with ErrFull (the RTSJ arrival
	// queue's default throw behaviour).
	Refuse OverflowPolicy = iota + 1
	// DropOldest overwrites the oldest queued message.
	DropOldest
	// DropNewest silently discards the new message.
	DropNewest
)

// Stats summarizes a buffer's life.
type Stats struct {
	Enqueued int64
	Dequeued int64
	Dropped  int64
	MaxDepth int
	// Depth is the queue length at the moment Stats was taken.
	Depth int
}

// OverflowRate is the fraction of offered messages the buffer
// dropped, in [0,1] — the health signal supervision watches for a
// receiver that cannot keep up.
func (s Stats) OverflowRate() float64 {
	offered := s.Enqueued + s.Dropped
	if offered == 0 {
		return 0
	}
	return float64(s.Dropped) / float64(offered)
}

// Buffer is a bounded FIFO ring buffer. It is safe for concurrent
// use.
type Buffer struct {
	name     string
	capacity int
	policy   OverflowPolicy

	mu    sync.Mutex
	ring  []any
	head  int // next dequeue position
	count int
	stats Stats

	onEnqueue func()
}

// NewBuffer creates a bounded buffer.
func NewBuffer(name string, capacity int, policy OverflowPolicy) (*Buffer, error) {
	if capacity <= 0 {
		return nil, fmt.Errorf("comm: buffer %q needs a positive capacity, got %d", name, capacity)
	}
	switch policy {
	case Refuse, DropOldest, DropNewest:
	default:
		return nil, fmt.Errorf("comm: buffer %q has unknown overflow policy %d", name, policy)
	}
	return &Buffer{
		name:     name,
		capacity: capacity,
		policy:   policy,
		ring:     make([]any, capacity),
	}, nil
}

// Name returns the buffer name.
func (b *Buffer) Name() string { return b.name }

// Cap returns the buffer capacity.
func (b *Buffer) Cap() int { return b.capacity }

// Len returns the number of queued messages.
func (b *Buffer) Len() int {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.count
}

// Stats returns a copy of the buffer statistics.
func (b *Buffer) Stats() Stats {
	b.mu.Lock()
	defer b.mu.Unlock()
	s := b.stats
	s.Depth = b.count
	return s
}

// OnEnqueue registers a callback invoked (outside the lock) after each
// successful enqueue; the runtime uses it to fire the sporadic task of
// the receiving active component.
func (b *Buffer) OnEnqueue(fn func()) { b.onEnqueue = fn }

// Enqueue appends v, applying the overflow policy when full.
func (b *Buffer) Enqueue(v any) error {
	b.mu.Lock()
	if b.count == b.capacity {
		switch b.policy {
		case Refuse:
			b.stats.Dropped++
			b.mu.Unlock()
			return fmt.Errorf("%w: %s (capacity %d)", ErrFull, b.name, b.capacity)
		case DropNewest:
			b.stats.Dropped++
			b.mu.Unlock()
			return nil
		case DropOldest:
			b.head = (b.head + 1) % b.capacity
			b.count--
			b.stats.Dropped++
		}
	}
	b.ring[(b.head+b.count)%b.capacity] = v
	b.count++
	b.stats.Enqueued++
	if b.count > b.stats.MaxDepth {
		b.stats.MaxDepth = b.count
	}
	fn := b.onEnqueue
	b.mu.Unlock()
	if fn != nil {
		fn()
	}
	return nil
}

// Dequeue removes and returns the oldest message; ok is false when the
// buffer is empty.
func (b *Buffer) Dequeue() (v any, ok bool) {
	b.mu.Lock()
	defer b.mu.Unlock()
	if b.count == 0 {
		return nil, false
	}
	v = b.ring[b.head]
	b.ring[b.head] = nil
	b.head = (b.head + 1) % b.capacity
	b.count--
	b.stats.Dequeued++
	return v, true
}

// RTBuffer is the RTSJ-conscious buffer used by the generated
// infrastructure. All message slots are preallocated in a designated
// non-scoped memory area when the buffer is created — the standard
// RTSJ discipline for immortal memory, whose allocations are
// permanent — and reused for the life of the system, so steady-state
// message passing allocates nothing. Transfers deep-copy payloads
// into and out of the slots (the deep-copy pattern), and every access
// is checked against the caller's allocation context: a no-heap
// producer or consumer touching a heap-hosted buffer faults, as it
// would on a real RTSJ VM.
type RTBuffer struct {
	buf   *Buffer
	area  *memory.Area
	slots []*memory.Ref
}

// NewRTBuffer creates an RT buffer and preallocates its capacity
// slots of slotSize bytes each in area.
func NewRTBuffer(name string, capacity int, policy OverflowPolicy, area *memory.Area, slotSize int64) (*RTBuffer, error) {
	if area == nil {
		return nil, fmt.Errorf("comm: rt buffer %q needs a memory area", name)
	}
	if area.Kind() == memory.Scoped {
		return nil, fmt.Errorf("comm: rt buffer %q cannot live in scoped area %s (its messages would be reclaimed)",
			name, area.Name())
	}
	if slotSize <= 0 {
		return nil, fmt.Errorf("comm: rt buffer %q needs a positive slot size", name)
	}
	b, err := NewBuffer(name, capacity, policy)
	if err != nil {
		return nil, err
	}
	ctx, err := memory.NewContext(area, false)
	if err != nil {
		return nil, err
	}
	defer ctx.Close()
	rb := &RTBuffer{buf: b, area: area, slots: make([]*memory.Ref, capacity)}
	for i := range rb.slots {
		ref, err := ctx.Alloc(slotSize, nil)
		if err != nil {
			return nil, fmt.Errorf("comm: preallocating slots of %q: %w", name, err)
		}
		rb.slots[i] = ref
	}
	return rb, nil
}

// Name returns the buffer name.
func (b *RTBuffer) Name() string { return b.buf.name }

// Area returns the area the buffer's slots live in.
func (b *RTBuffer) Area() *memory.Area { return b.area }

// Len returns the number of queued messages.
func (b *RTBuffer) Len() int { return b.buf.Len() }

// Cap returns the buffer capacity.
func (b *RTBuffer) Cap() int { return b.buf.capacity }

// Stats returns the underlying buffer statistics.
func (b *RTBuffer) Stats() Stats { return b.buf.Stats() }

// OnEnqueue registers the post-enqueue callback.
func (b *RTBuffer) OnEnqueue(fn func()) { b.buf.OnEnqueue(fn) }

// Enqueue deep-copies payload into a preallocated slot under the
// producer's allocation context and queues the slot.
//
// RTBuffer mirrors the framework's binding topology: each binding has
// exactly one client and one server, so the buffer is
// single-producer/single-consumer. Concurrent producers must
// serialize externally.
func (b *RTBuffer) Enqueue(ctx *memory.Context, payload any) error {
	b.buf.mu.Lock()
	if b.buf.count == b.buf.capacity {
		switch b.buf.policy {
		case Refuse:
			b.buf.stats.Dropped++
			b.buf.mu.Unlock()
			return fmt.Errorf("%w: %s (capacity %d)", ErrFull, b.buf.name, b.buf.capacity)
		case DropNewest:
			b.buf.stats.Dropped++
			b.buf.mu.Unlock()
			return nil
		case DropOldest:
			b.buf.head = (b.buf.head + 1) % b.buf.capacity
			b.buf.count--
			b.buf.stats.Dropped++
		}
	}
	// The slot at the ring position the message will occupy; stable
	// under SPSC because only this producer can advance the tail.
	slot := b.slots[(b.buf.head+b.buf.count)%b.buf.capacity]
	b.buf.mu.Unlock()
	if err := ctx.Store(slot, patterns.CopyValue(payload)); err != nil {
		return fmt.Errorf("comm: enqueue on %s: %w", b.buf.name, err)
	}
	return b.buf.Enqueue(slot)
}

// Dequeue removes the oldest message and returns its payload,
// deep-copied out under the consumer's allocation context so the
// consumer never holds a reference into the buffer's area.
func (b *RTBuffer) Dequeue(ctx *memory.Context) (any, bool, error) {
	v, ok := b.buf.Dequeue()
	if !ok {
		return nil, false, nil
	}
	ref, isRef := v.(*memory.Ref)
	if !isRef {
		return nil, true, fmt.Errorf("comm: foreign message in rt buffer %s", b.buf.name)
	}
	payload, err := ctx.Load(ref)
	if err != nil {
		return nil, true, fmt.Errorf("comm: dequeue on %s: %w", b.buf.name, err)
	}
	return patterns.CopyValue(payload), true, nil
}
