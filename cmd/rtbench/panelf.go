package main

import (
	"fmt"
	"io"
	"time"

	"soleil/internal/load"
)

// scenarioRow is one load-plane search result: the highest offered
// rate a synthesized scenario sustains with p99.9 under the bound,
// plus the tail and shedding profile of the trial at that rate.
type scenarioRow struct {
	Scenario        string  `json:"scenario"`
	Shape           string  `json:"shape"`
	Components      int     `json:"components"`
	Nodes           int     `json:"nodes"`
	Mode            string  `json:"mode"`
	SustainableRate float64 `json:"sustainableRate"`
	Injected        int64   `json:"injected"`
	Completed       int64   `json:"completed"`
	Shed            int64   `json:"shed"`
	Dropped         int64   `json:"dropped"`
	DeadlineMisses  int64   `json:"deadlineMisses"`
	P50Ns           int64   `json:"p50Ns"`
	P99Ns           int64   `json:"p99Ns"`
	P999Ns          int64   `json:"p999Ns"`
	Trials          int     `json:"trials"`
}

// panelF extends the evaluation to architecture scale: the open-loop
// load plane synthesizes pipeline, fan-in and sporadic scenarios,
// in-process and partitioned across three loopback cluster agents,
// and binary-searches each one's sustainable throughput — the highest
// offered rate whose p99.9 (measured from the *intended* arrival
// instant, so a stalled run cannot hide the arrivals it delayed)
// stays under the bound. Rows land in BENCH_scenarios.json under the
// shared envelope so CI can archive the trend.
func panelF(w io.Writer, outFile string, components int, trial time.Duration, bound time.Duration) error {
	fmt.Fprintln(w, "=== panel (f): open-loop scenario fleet, sustainable throughput ===")
	fmt.Fprintf(w, "%d components per scenario, %v trials, p99.9 bound %v\n", components, trial, bound)

	cases := []struct {
		shape load.Shape
		nodes int
	}{
		{load.Pipeline, 1},
		{load.Pipeline, 3},
		{load.Fanin, 1},
		{load.Fanin, 3},
		{load.Sporadic, 1},
		{load.Sporadic, 3},
	}

	var rows []scenarioRow
	fmt.Fprintf(w, "%-26s %-10s %14s %10s %10s %10s\n",
		"scenario", "mode", "sustainable/s", "p50", "p99.9", "shed")
	for _, tc := range cases {
		spec := load.Spec{Shape: tc.shape, Components: components, Nodes: tc.nodes, Seed: 11}
		so := load.SearchOptions{
			MinRate:       200,
			MaxRate:       8000,
			Iterations:    5,
			Bound:         bound,
			TrialDuration: trial,
			TrialWarmup:   trial / 4,
		}
		if tc.shape == load.Sporadic {
			// Sporadic entries shed by contract; judge the search on
			// the tail, not on a completion ratio the gates are
			// designed to violate under overload.
			so.MinCompletionRatio = 0.5
		}
		sr, err := load.SearchRate(spec, load.RunConfig{Resilient: true}, so)
		if err != nil {
			return err
		}
		row := scenarioRow{
			Shape:      string(tc.shape),
			Components: components,
			Nodes:      tc.nodes,
			Trials:     len(sr.Trials),
		}
		if best := sr.Best; best != nil {
			row.Scenario = best.Scenario
			row.Mode = best.Mode
			row.SustainableRate = sr.SustainableRate
			row.Injected = best.Injected
			row.Completed = best.Completed
			row.Shed = best.Shed
			row.Dropped = best.Dropped
			row.DeadlineMisses = best.DeadlineMisses
			row.P50Ns = best.P50.Nanoseconds()
			row.P99Ns = best.P99.Nanoseconds()
			row.P999Ns = best.P999.Nanoseconds()
		} else if len(sr.Trials) > 0 {
			// Even the bracket floor failed: record the floor trial so
			// the regression is visible in the artifact, rate 0.
			row.Scenario = sr.Trials[0].Scenario
			row.Mode = sr.Trials[0].Mode
		}
		rows = append(rows, row)
		fmt.Fprintf(w, "%-26s %-10s %14.0f %10v %10v %10d\n",
			row.Scenario, row.Mode, row.SustainableRate,
			time.Duration(row.P50Ns), time.Duration(row.P999Ns), row.Shed)
	}

	meta := map[string]any{
		"components":    components,
		"trialDuration": trial.String(),
		"p999BoundNs":   bound.Nanoseconds(),
	}
	return writeBench(w, "f", outFile, meta, rows)
}
