package main

import (
	"encoding/json"
	"fmt"
	"io"
	"os"
	"os/exec"
	"runtime"
	"strings"
	"time"
)

// benchEnvelope is the one schema every BENCH_*.json artifact shares:
// which panel produced it, against which commit, on which platform,
// when, and the panel's rows. Panel-specific context (message counts,
// digest sizes, trial durations) rides in meta so the row arrays stay
// homogeneous and trend tooling can diff files without knowing every
// panel's shape.
type benchEnvelope struct {
	Panel       string         `json:"panel"`
	Commit      string         `json:"commit"`
	GOOS        string         `json:"goos"`
	GOARCH      string         `json:"goarch"`
	GeneratedAt string         `json:"generatedAt"`
	Meta        map[string]any `json:"meta,omitempty"`
	Rows        any            `json:"rows"`
}

// headCommit resolves the short commit hash the benchmark ran
// against; outside a git checkout (release tarballs, CI caches) the
// envelope still validates with "unknown".
func headCommit() string {
	out, err := exec.Command("git", "rev-parse", "--short", "HEAD").Output()
	if err != nil {
		return "unknown"
	}
	s := strings.TrimSpace(string(out))
	if s == "" {
		return "unknown"
	}
	return s
}

// writeBench writes one panel's rows wrapped in the shared envelope,
// and reports the file on w so terminal runs show where results went.
func writeBench(w io.Writer, panel, outFile string, meta map[string]any, rows any) error {
	if outFile == "" {
		return nil
	}
	doc := benchEnvelope{
		Panel:       panel,
		Commit:      headCommit(),
		GOOS:        runtime.GOOS,
		GOARCH:      runtime.GOARCH,
		GeneratedAt: time.Now().UTC().Format(time.RFC3339),
		Meta:        meta,
		Rows:        rows,
	}
	f, err := os.Create(outFile)
	if err != nil {
		return err
	}
	enc := json.NewEncoder(f)
	enc.SetIndent("", "  ")
	if err := enc.Encode(doc); err != nil {
		f.Close()
		return err
	}
	if err := f.Close(); err != nil {
		return err
	}
	fmt.Fprintf(w, "wrote %s\n", outFile)
	return nil
}
