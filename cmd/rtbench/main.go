// Command rtbench regenerates the paper's evaluation (Sect. 5.1,
// Fig. 7) on this machine:
//
//	rtbench -panel a    # Fig. 7(a): execution-time distributions
//	rtbench -panel b    # Fig. 7(b): median and jitter table
//	rtbench -panel c    # Fig. 7(c): memory footprints
//	rtbench -panel d    # cluster links vs in-process bindings
//	rtbench -panel e    # observability-plane hot paths (ns/op, allocs/op)
//	rtbench -panel f    # open-loop scenario fleet: sustainable throughput
//	rtbench -panel all  # everything
//
// The workload is the motivation example's complete iteration,
// measured over steady-state observations on the four implementations
// (hand-written OO, SOLEIL, MERGE-ALL, ULTRA-MERGE). Use -csv to dump
// the raw panel-(a) samples.
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"testing"
	"time"

	"soleil/internal/assembly"
	"soleil/internal/evaluation"
	"soleil/internal/fixture"
	"soleil/internal/generate"
	"soleil/internal/obs"
	"soleil/internal/trace"
)

func main() {
	panel := flag.String("panel", "all", "which panel to regenerate: a, b, c (Fig. 7), d (cluster), e (observability) or all")
	observations := flag.Int("observations", evaluation.DefaultObservations, "steady-state observations per variant")
	warmup := flag.Int("warmup", evaluation.DefaultWarmup, "cold-start transactions discarded")
	buckets := flag.Int("buckets", 20, "histogram buckets for panel a")
	csv := flag.Bool("csv", false, "emit raw panel-(a) samples as CSV")
	messages := flag.Int("messages", 2000, "panel-(d) round trips per scenario")
	inflight := flag.Int("inflight", 4, "panel-(d) closed-loop window")
	clusterOut := flag.String("cluster-out", "BENCH_cluster.json", "panel-(d) JSON output file (empty = skip)")
	obsOut := flag.String("obs-out", "BENCH_obs.json", "panel-(e) JSON output file (empty = skip)")
	scenariosOut := flag.String("scenarios-out", "BENCH_scenarios.json", "panel-(f) JSON output file (empty = skip)")
	scenarioComponents := flag.Int("scenario-components", 24, "panel-(f) components per synthesized scenario")
	scenarioTrial := flag.Duration("scenario-trial", time.Second, "panel-(f) duration of each rate-search trial")
	scenarioBound := flag.Duration("scenario-bound", 50*time.Millisecond, "panel-(f) p99.9 ceiling a rate must sustain")
	flag.Parse()

	if err := run(os.Stdout, *panel, *observations, *warmup, *buckets, *csv, *messages, *inflight, *clusterOut, *obsOut,
		*scenariosOut, *scenarioComponents, *scenarioTrial, *scenarioBound); err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
}

func run(w io.Writer, panel string, observations, warmup, buckets int, csv bool, messages, inflight int, clusterOut, obsOut string,
	scenariosOut string, scenarioComponents int, scenarioTrial, scenarioBound time.Duration) error {
	wantTiming := panel == "a" || panel == "b" || panel == "all"
	var timings []evaluation.TimingResult
	if wantTiming {
		fmt.Fprintf(w, "collecting %d observations per variant (%d warm-up) ...\n\n", observations, warmup)
		var err error
		timings, err = evaluation.MeasureAllTimings(warmup, observations)
		if err != nil {
			return err
		}
	}

	switch panel {
	case "a":
		return panelA(w, timings, buckets, csv)
	case "b":
		return panelB(w, timings)
	case "c":
		return panelC(w)
	case "d":
		return panelD(w, messages, inflight, clusterOut)
	case "e":
		return panelE(w, obsOut)
	case "f":
		return panelF(w, scenariosOut, scenarioComponents, scenarioTrial, scenarioBound)
	case "all":
		if err := panelA(w, timings, buckets, csv); err != nil {
			return err
		}
		fmt.Fprintln(w)
		if err := panelB(w, timings); err != nil {
			return err
		}
		fmt.Fprintln(w)
		if err := panelC(w); err != nil {
			return err
		}
		fmt.Fprintln(w)
		if err := panelD(w, messages, inflight, clusterOut); err != nil {
			return err
		}
		fmt.Fprintln(w)
		if err := panelE(w, obsOut); err != nil {
			return err
		}
		fmt.Fprintln(w)
		return panelF(w, scenariosOut, scenarioComponents, scenarioTrial, scenarioBound)
	default:
		return fmt.Errorf("rtbench: unknown panel %q (want a, b, c, d, e, f or all)", panel)
	}
}

func panelA(w io.Writer, timings []evaluation.TimingResult, buckets int, csv bool) error {
	fmt.Fprintln(w, "=== Fig. 7(a): execution-time distribution ===")
	var ooSamples []time.Duration
	for _, r := range timings {
		if r.Variant == "OO" {
			ooSamples = r.Samples
		}
		if csv {
			fmt.Fprintf(w, "# %s\n", r.Variant)
			if err := trace.WriteCSV(w, r.Samples); err != nil {
				return err
			}
			continue
		}
		if err := trace.RenderHistogram(w, r.Variant, trace.Histogram(r.Samples, buckets)); err != nil {
			return err
		}
		fmt.Fprintln(w)
	}
	if csv {
		return nil
	}
	// The paper's non-determinism claim: the framework adds a constant
	// overhead, not new behaviour modes. Two views: tail heaviness
	// (p99/median — a framework-induced mode would fatten the tail
	// beyond the baseline's) and the median-aligned Kolmogorov-Smirnov
	// distance to the OO curve (0 = identical shapes).
	fmt.Fprintln(w, "determinism check (vs OO):")
	fmt.Fprintf(w, "  %-12s %12s %10s\n", "variant", "p99/median", "KS vs OO")
	for _, r := range timings {
		ratio := float64(r.Summary.P99) / float64(r.Summary.Median)
		if r.Variant == "OO" {
			fmt.Fprintf(w, "  %-12s %12.2f %10s\n", r.Variant, ratio, "-")
			continue
		}
		fmt.Fprintf(w, "  %-12s %12.2f %10.3f\n",
			r.Variant, ratio, trace.ShiftedKS(ooSamples, r.Samples))
	}
	return nil
}

// Fig. 7(b) reference values from the paper (µs, Pentium-4 2.66 GHz,
// Sun RTS 2.1, RT-Preempt Linux).
var paperB = map[string][2]float64{
	"OO":          {31.9, 0.457},
	"SOLEIL":      {33.5, 0.453},
	"MERGE-ALL":   {33.3, 0.387},
	"ULTRA-MERGE": {31.1, 0.384},
}

func panelB(w io.Writer, timings []evaluation.TimingResult) error {
	fmt.Fprintln(w, "=== Fig. 7(b): execution time median and jitter ===")
	fmt.Fprintf(w, "%-12s %14s %14s %10s | %12s %12s\n",
		"variant", "median", "jitter", "Δ vs OO", "paper-median", "paper-jitter")
	var ooMedian float64
	for _, r := range timings {
		if r.Variant == "OO" {
			ooMedian = float64(r.Summary.Median)
		}
	}
	for _, r := range timings {
		delta := "-"
		if r.Variant != "OO" && ooMedian > 0 {
			delta = fmt.Sprintf("%+.1f%%", (float64(r.Summary.Median)-ooMedian)/ooMedian*100)
		}
		ref := paperB[r.Variant]
		fmt.Fprintf(w, "%-12s %14v %14v %10s | %9.1fµs %9.3fµs\n",
			r.Variant, r.Summary.Median, r.Summary.Jitter, delta, ref[0], ref[1])
	}
	return nil
}

// Fig. 7(c) reference: the paper reports SOLEIL ≈ OO + 280 KB,
// MERGE-ALL ≈ OO + 4.7 KB, ULTRA-MERGE below OO.
func panelC(w io.Writer) error {
	fmt.Fprintln(w, "=== Fig. 7(c): memory footprint ===")
	results, err := evaluation.MeasureAllFootprints()
	if err != nil {
		return err
	}
	var oo int64
	for _, r := range results {
		if r.Variant == "OO" {
			oo = r.Bytes
		}
	}
	fmt.Fprintf(w, "%-12s %12s %12s\n", "variant", "footprint", "Δ vs OO")
	for _, r := range results {
		delta := "-"
		if r.Variant != "OO" {
			delta = fmt.Sprintf("%+d B", r.Bytes-oo)
		}
		fmt.Fprintf(w, "%-12s %10d B %12s\n", r.Variant, r.Bytes, delta)
	}
	fmt.Fprintln(w, "paper: SOLEIL ≈ OO+280KB, MERGE-ALL ≈ OO+4.7KB, ULTRA-MERGE < OO")

	// The ULTRA-MERGE compactness the paper reports at runtime shows
	// up in this reproduction as generated-source compactness (Go has
	// no per-class metadata to shed): emit the generator's size
	// metrics alongside.
	fmt.Fprintln(w, "\ngenerated infrastructure source (motivation example):")
	arch, err := fixture.MotivationExample()
	if err != nil {
		return err
	}
	for _, mode := range []assembly.Mode{assembly.Soleil, assembly.MergeAll, assembly.UltraMerge} {
		files, err := generate.Generate(arch, generate.Options{Mode: mode, Main: true})
		if err != nil {
			return err
		}
		report := generate.CheckRequirements(files, mode)
		fmt.Fprintf(w, "%-12s %3d files %5d lines\n", mode, report.Files, report.Lines)
	}
	return nil
}

// panelD extends the evaluation past the paper: the cluster
// deployment plane's cost. The same ping-pong architecture runs once
// on one node (async bindings over in-process RTBuffers) and once
// partitioned across two nodes over loopback TCP; the table prices
// the node boundary in round-trip latency and throughput. Results
// also land in a JSON file so CI can archive the trend.
func panelD(w io.Writer, messages, inflight int, outFile string) error {
	fmt.Fprintln(w, "=== panel (d): cross-node links vs in-process async bindings ===")
	fmt.Fprintf(w, "%d round trips per scenario, %d in flight\n", messages, inflight)
	results, err := evaluation.MeasureCluster(messages, inflight)
	if err != nil {
		return err
	}
	fmt.Fprintf(w, "%-18s %12s %12s %14s\n", "scenario", "RTT median", "RTT p99", "round trips/s")
	for _, r := range results {
		fmt.Fprintf(w, "%-18s %12v %12v %14.0f\n", r.Scenario, r.RTTMedian, r.RTTP99, r.Throughput)
	}
	fmt.Fprintln(w, "note: in-process RTTs include sporadic-release polling latency on both hops;")
	fmt.Fprintln(w, "      imported link messages are invoked on receipt.")
	meta := map[string]any{"messages": messages, "inflight": inflight}
	return writeBench(w, "d", outFile, meta, results)
}

// panelE prices the observability plane itself: the HDR histogram,
// the flight recorder and the heartbeat digest codec, measured with
// the testing harness so ns/op and allocs/op land in a JSON file CI
// can archive next to the soak summaries. Every recording path must
// report 0 allocs/op — the same claim `make benchcheck` enforces on
// the dispatch interceptors.
func panelE(w io.Writer, outFile string) error {
	fmt.Fprintln(w, "=== panel (e): observability-plane hot paths ===")

	type obsRow struct {
		Name        string  `json:"name"`
		NsPerOp     float64 `json:"nsPerOp"`
		AllocsPerOp int64   `json:"allocsPerOp"`
		BytesPerOp  int64   `json:"bytesPerOp"`
	}
	bench := func(name string, fn func(b *testing.B)) obsRow {
		r := testing.Benchmark(func(b *testing.B) {
			b.ReportAllocs()
			fn(b)
		})
		return obsRow{
			Name:        name,
			NsPerOp:     float64(r.T.Nanoseconds()) / float64(r.N),
			AllocsPerOp: r.AllocsPerOp(),
			BytesPerOp:  r.AllocedBytesPerOp(),
		}
	}

	var hist obs.Histogram
	for i := 0; i < 10000; i++ {
		hist.Observe(time.Duration(1+i%4096) * time.Microsecond)
	}
	snap := hist.Snapshot()
	payload := obs.AppendDigest(nil, &snap, 0)
	rec := obs.NewRecorder("bench", 0)
	defer rec.Close()

	rows := []obsRow{
		bench("histogram-observe", func(b *testing.B) {
			var h obs.Histogram
			for i := 0; i < b.N; i++ {
				h.Observe(time.Duration(i%4096) * time.Microsecond)
			}
		}),
		bench("histogram-quantile-p99", func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				_ = hist.Quantile(0.99)
			}
		}),
		bench("recorder-record", func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				rec.Record(obs.EvDeadlineMiss, "bench", int64(i), obs.SpanContext{})
			}
		}),
		bench("digest-encode", func(b *testing.B) {
			buf := make([]byte, 0, 512)
			for i := 0; i < b.N; i++ {
				buf = obs.AppendDigest(buf[:0], &snap, 0)
			}
		}),
		bench("digest-decode", func(b *testing.B) {
			var s obs.HistogramSnapshot
			for i := 0; i < b.N; i++ {
				if _, err := obs.DecodeDigest(payload, &s); err != nil {
					b.Fatal(err)
				}
			}
		}),
	}

	fmt.Fprintf(w, "%-24s %12s %10s %10s\n", "path", "ns/op", "allocs/op", "B/op")
	hot := map[string]bool{"histogram-observe": true, "recorder-record": true}
	var bad []string
	for _, r := range rows {
		fmt.Fprintf(w, "%-24s %12.1f %10d %10d\n", r.Name, r.NsPerOp, r.AllocsPerOp, r.BytesPerOp)
		if hot[r.Name] && r.AllocsPerOp != 0 {
			bad = append(bad, r.Name)
		}
	}
	if len(bad) > 0 {
		return fmt.Errorf("rtbench: recording paths allocate: %v", bad)
	}
	fmt.Fprintf(w, "digest size: %d bytes for %d observations\n", len(payload), snap.Count)
	meta := map[string]any{"digestBytes": len(payload)}
	return writeBench(w, "e", outFile, meta, rows)
}
