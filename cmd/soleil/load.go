package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"time"

	"soleil/internal/adl"
	"soleil/internal/load"
)

// cmdLoad is the open-loop load plane's front end: synthesize a
// scenario architecture at scale, drive it on a fixed wall-clock
// schedule independent of completions (coordinated-omission-safe) and
// report throughput, tail latency, shed and deadline-miss counts as
// JSON on stdout. -emit prints the synthesized ADL (and, with
// -nodes > 1, -emit-deploy the deployment descriptor) instead of
// running, so generated architectures can be fed to soleil validate.
func cmdLoad(args []string) error {
	fs := flag.NewFlagSet("load", flag.ContinueOnError)
	scenario := fs.String("scenario", "pipeline",
		"scenario shape: pipeline, fanin, statemachine, reactive or sporadic")
	components := fs.Int("components", 64, "functional component count (including the sink)")
	nodes := fs.Int("nodes", 1, "deployment width: 1 = in-process, N>1 = N loopback cluster agents")
	seed := fs.Int64("seed", 1, "seed for every random structural choice (equal seeds give byte-identical ADL)")
	rate := fs.Float64("rate", 1000, "offered arrival rate, messages/sec across all entries")
	duration := fs.Duration("duration", 2*time.Second, "measured window")
	warmup := fs.Duration("warmup", 500*time.Millisecond, "settling window excluded from every statistic")
	arrival := fs.String("arrival", "constant", "arrival process: constant, burst or ramp")
	burst := fs.Int("burst", 32, "volley size for the burst arrival process")
	deadline := fs.Duration("deadline", 50*time.Millisecond, "completions above this latency count as deadline misses")
	resilient := fs.Bool("resilient", false, "run the in-process system in the resilient execution mode")
	contracted := fs.Bool("contracted", false, "attach QoS contracts to the entry bindings (always on for sporadic)")
	contractRate := fs.Float64("contract-rate", 0, "contracted admission rate per entry binding (default 2000/s)")
	search := fs.Bool("search", false,
		"binary-search the highest sustainable rate (p99.9 under -deadline) instead of a single run; -rate caps the bracket")
	emit := fs.Bool("emit", false, "print the synthesized ADL on stdout instead of running")
	emitDeploy := fs.Bool("emit-deploy", false, "print the synthesized deployment descriptor on stdout instead of running")
	verbose := fs.Bool("v", false, "log progress on stderr")
	if err := fs.Parse(args); err != nil {
		return err
	}
	shape, err := load.ParseShape(*scenario)
	if err != nil {
		return err
	}
	arr, err := load.ParseArrival(*arrival)
	if err != nil {
		return err
	}
	spec := load.Spec{
		Shape:        shape,
		Components:   *components,
		Nodes:        *nodes,
		Seed:         *seed,
		Contracted:   *contracted,
		ContractRate: *contractRate,
	}
	if *emit || *emitDeploy {
		scn, err := load.Synthesize(spec)
		if err != nil {
			return err
		}
		if *emitDeploy {
			if scn.Deploy == nil {
				return fmt.Errorf("soleil: -emit-deploy needs -nodes > 1 (single-node specs have no deployment descriptor)")
			}
			return adl.EncodeDeployment(os.Stdout, scn.Deploy)
		}
		return adl.Encode(os.Stdout, scn.Arch)
	}

	rc := load.RunConfig{Resilient: *resilient}
	if *verbose {
		rc.Logf = func(format string, a ...any) { fmt.Fprintf(os.Stderr, format+"\n", a...) }
	}
	enc := json.NewEncoder(os.Stdout)
	enc.SetIndent("", "  ")

	if *search {
		sr, err := load.SearchRate(spec, rc, load.SearchOptions{
			MaxRate:       *rate,
			Bound:         *deadline,
			TrialDuration: *duration,
			TrialWarmup:   *warmup,
			Arrival:       arr,
			BurstSize:     *burst,
		})
		if err != nil {
			return err
		}
		fmt.Fprintf(os.Stderr, "sustainable rate: %.0f msgs/sec (%d trials)\n",
			sr.SustainableRate, len(sr.Trials))
		return enc.Encode(sr)
	}

	res, err := load.Run(spec, load.Profile{
		Rate:      *rate,
		Duration:  *duration,
		Warmup:    *warmup,
		Arrival:   arr,
		BurstSize: *burst,
		Deadline:  *deadline,
	}, rc)
	if err != nil {
		return err
	}
	fmt.Fprintf(os.Stderr,
		"%s: injected %d, completed %d (%.0f/s), shed %d, dropped %d, misses %d; p50 %v p99 %v p99.9 %v\n",
		res.Scenario, res.Injected, res.Completed, res.AchievedRate,
		res.Shed, res.Dropped, res.DeadlineMisses, res.P50, res.P99, res.P999)
	return enc.Encode(res)
}
