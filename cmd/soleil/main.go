// Command soleil is the framework's toolchain front end:
//
//	soleil validate [-json] [-sarif F] [-max-severity S] <arch.xml>  RTSJ conformance check (ADL level)
//	soleil vet [-json] [-sarif F] [-adl arch.xml] [packages]   RTSJ conformance check (source level)
//	soleil vet -arch -adl arch.xml [-deploy deploy.xml] [packages]   whole-architecture suite (SA05–SA11)
//	soleil analyze <arch.xml>                  schedulability analysis
//	soleil generate -mode M -out DIR <arch.xml>  emit infrastructure source
//	soleil genreport <arch.xml>                Sect. 5.2 requirements report
//	soleil suggest <arch.xml>                  apply suggested patterns, emit completed ADL
//	soleil run -mode M -duration D <arch.xml>  deploy (stub contents) and simulate
//	soleil load -scenario S -components N -rate R -duration D -seed S   open-loop load scenario
//	soleil serve -node N -adl arch.xml -deploy deploy.xml   run one cluster node
//	soleil cluster -adl arch.xml -deploy deploy.xml [-serve ADDR]   cluster-wide status
//	soleil top ADDR                            one-shot snapshot of a serving system
//
// validate and vet print human-readable diagnostics on stderr; with
// -json the machine-readable form — one shared {rule, severity,
// subject, message, suggestion, pos} schema for both — goes to
// stdout. -max-severity picks the severity that makes the exit status
// non-zero, so CI can gate on warnings when desired.
//
// run accepts -metrics ADDR to serve live observability endpoints
// (/metrics, /healthz, /arch, /top, /trace, /debug/flightrecorder),
// -trace-json FILE to write a Chrome trace_event file of the run,
// -flightrecorder-json FILE to write the black-box event timeline,
// and -hold D to keep the endpoints up after the simulation finishes.
//
// top works against a single node or a cluster coordinator (whose
// /top federates every node); top -flightrecorder fetches the flight
// recorder instead — merged cluster-wide from a coordinator. A
// serving node also dumps its flight recorder to stderr on SIGQUIT.
//
// Modes: SOLEIL, MERGE-ALL, ULTRA-MERGE.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"net/http"
	"os"
	"os/signal"
	"path/filepath"
	"syscall"
	"time"

	"soleil/internal/adl"
	"soleil/internal/assembly"
	"soleil/internal/cluster"
	"soleil/internal/fault"
	"soleil/internal/generate"
	"soleil/internal/lint"
	"soleil/internal/membrane"
	"soleil/internal/model"
	"soleil/internal/obs"
	"soleil/internal/reconfig"
	"soleil/internal/rtsj/analysis"
	"soleil/internal/validate"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
}

func run(args []string) error {
	if len(args) == 0 {
		return fmt.Errorf("usage: soleil <validate|vet|analyze|generate|genreport|suggest|run|load|serve|cluster|top> [flags] [args]")
	}
	switch args[0] {
	case "validate":
		return cmdValidate(args[1:])
	case "vet":
		return cmdVet(args[1:])
	case "analyze":
		return cmdAnalyze(args[1:])
	case "generate":
		return cmdGenerate(args[1:])
	case "genreport":
		return cmdGenReport(args[1:])
	case "suggest":
		return cmdSuggest(args[1:])
	case "run":
		return cmdRun(args[1:])
	case "load":
		return cmdLoad(args[1:])
	case "serve":
		return cmdServe(args[1:])
	case "cluster":
		return cmdCluster(args[1:])
	case "top":
		return cmdTop(args[1:])
	default:
		return fmt.Errorf("soleil: unknown command %q", args[0])
	}
}

// cmdTop fetches the one-shot textual snapshot from a system serving
// its observability endpoints: a single node (soleil run -metrics
// ADDR, soleil serve, or any program calling obs.Serve) or a cluster
// coordinator (soleil cluster -serve ADDR), whose /top federates
// every node's view. -flightrecorder fetches the black-box event
// timeline instead — per-node from an agent, merged cluster-wide
// from a coordinator.
func cmdTop(args []string) error {
	fs := flag.NewFlagSet("top", flag.ContinueOnError)
	dump := fs.Bool("flightrecorder", false,
		"fetch the flight-recorder timeline instead of the metrics snapshot")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if fs.NArg() != 1 {
		return fmt.Errorf("usage: soleil top [-flightrecorder] HOST:PORT")
	}
	host := fs.Arg(0)
	paths := []string{"/top"}
	if *dump {
		// A node agent serves /debug/flightrecorder; a coordinator
		// serves the merged timeline on /flightrecorder. Try both so
		// the command works against either.
		paths = []string{"/debug/flightrecorder?format=text", "/flightrecorder?format=text"}
	}
	var lastErr error
	for _, p := range paths {
		resp, err := http.Get("http://" + host + p)
		if err != nil {
			lastErr = fmt.Errorf("soleil: %w", err)
			continue
		}
		if resp.StatusCode != http.StatusOK {
			resp.Body.Close()
			lastErr = fmt.Errorf("soleil: %s%s returned %s", host, p, resp.Status)
			continue
		}
		_, err = io.Copy(os.Stdout, resp.Body)
		resp.Body.Close()
		return err
	}
	return lastErr
}

// cmdSuggest applies the validator's cross-scope pattern suggestions
// and re-emits the completed ADL on stdout — the design flow's
// "possible solutions proposed" step as a batch tool.
func cmdSuggest(args []string) error {
	arch, err := loadArch(args)
	if err != nil {
		return err
	}
	changed, err := validate.ApplySuggestedPatterns(arch)
	if err != nil {
		return err
	}
	for _, b := range changed {
		fmt.Fprintf(os.Stderr, "applied pattern %q to %s\n", b.Pattern, b)
	}
	if report := validate.Validate(arch); !report.OK() {
		for _, d := range report.Errors() {
			fmt.Fprintln(os.Stderr, d)
		}
		return fmt.Errorf("soleil: %d errors remain beyond pattern selection", len(report.Errors()))
	}
	return adl.Encode(os.Stdout, arch)
}

func loadArch(args []string) (*model.Architecture, error) {
	if len(args) != 1 {
		return nil, fmt.Errorf("soleil: expected exactly one architecture file, got %d args", len(args))
	}
	return adl.DecodeFile(args[0])
}

func cmdValidate(args []string) error {
	fs := flag.NewFlagSet("validate", flag.ContinueOnError)
	jsonOut := fs.Bool("json", false,
		"emit diagnostics as JSON on stdout (shared schema with soleil vet -json)")
	deployPath := fs.String("deploy", "",
		"deployment descriptor to check against the architecture (RT14/RT15/RT17 cross-node rules)")
	maxSev := fs.String("max-severity", "error",
		"lowest severity that makes the exit status non-zero (info, warning, error)")
	sarifOut := fs.String("sarif", "",
		"write diagnostics as a SARIF 2.1.0 log to FILE (\"-\" for stdout)")
	if err := fs.Parse(args); err != nil {
		return err
	}
	threshold, err := validate.ParseSeverity(*maxSev)
	if err != nil {
		return err
	}
	arch, err := loadArch(fs.Args())
	if err != nil {
		return err
	}
	report := validate.Validate(arch)
	if *deployPath != "" {
		dep, err := adl.DecodeDeploymentFile(*deployPath)
		if err != nil {
			return err
		}
		depReport, err := validate.ValidateDeployment(arch, dep)
		if err != nil {
			return err
		}
		report.Diagnostics = append(report.Diagnostics, depReport.Diagnostics...)
	}
	// Human-readable diagnostics go to stderr; stdout is reserved for
	// the machine-readable form.
	for _, d := range report.Diagnostics {
		fmt.Fprintln(os.Stderr, d)
	}
	if *jsonOut {
		if err := validate.EncodeJSON(os.Stdout, report.Diagnostics); err != nil {
			return err
		}
	}
	if *sarifOut != "" {
		if err := writeSARIF(*sarifOut, report.Diagnostics, "soleil-validate", nil); err != nil {
			return err
		}
	}
	if n := validate.CountAtLeast(report.Diagnostics, threshold); n > 0 {
		return fmt.Errorf("soleil: architecture %q has %d finding(s) at or above severity %v",
			arch.Name(), n, threshold)
	}
	fmt.Fprintf(os.Stderr, "architecture %q is RTSJ-compliant (%d components, %d bindings)\n",
		arch.Name(), len(arch.Components()), len(arch.Bindings()))
	return nil
}

// cmdVet runs the source-level conformance suite (internal/lint) over
// Go packages: the static counterpart of cmdValidate's model checks.
func cmdVet(args []string) error {
	fs := flag.NewFlagSet("vet", flag.ContinueOnError)
	jsonOut := fs.Bool("json", false,
		"emit diagnostics as JSON on stdout (shared schema with soleil validate -json)")
	adlPath := fs.String("adl", "",
		"architecture file for the archconform pass (omit to skip SA04)")
	deployPath := fs.String("deploy", "",
		"deployment descriptor checked against -adl (adds RT14/RT15/RT17 cross-node findings)")
	analyzers := fs.String("analyzers", "", "comma-separated analyzer selection (default: all)")
	archMode := fs.Bool("arch", false,
		"run the whole-architecture suite (SA05–SA11) instead of the per-function passes; requires -adl")
	maxSev := fs.String("max-severity", "warning",
		"lowest severity that makes the exit status non-zero (info, warning, error)")
	sarifOut := fs.String("sarif", "",
		"write diagnostics as a SARIF 2.1.0 log to FILE (\"-\" for stdout)")
	factsDir := fs.String("facts", defaultFactsDir(),
		"directory for the interprocedural summary cache (empty to disable)")
	factsStats := fs.Bool("facts-stats", false,
		"print the summary-cache hit/miss counters on stderr")
	baseline := fs.String("baseline", "",
		"baseline gating: write:FILE snapshots the findings as accepted debt, "+
			"check:FILE (or FILE) subtracts the snapshot so only new findings gate")
	if err := fs.Parse(args); err != nil {
		return err
	}
	threshold, err := validate.ParseSeverity(*maxSev)
	if err != nil {
		return err
	}
	baseMode, basePath, err := lint.ParseBaselineFlag(*baseline)
	if err != nil {
		return err
	}
	var stats lint.CacheStats
	opts := lint.Options{
		Patterns: fs.Args(),
		ADL:      *adlPath,
		Deploy:   *deployPath,
		FactsDir: *factsDir,
		Stats:    &stats,
	}
	var diags []validate.Diagnostic
	if *archMode {
		if *adlPath == "" {
			return fmt.Errorf("soleil: vet -arch needs -adl (the wait graph comes from the bindings)")
		}
		if opts.ArchAnalyzers, err = lint.ArchByName(*analyzers); err != nil {
			return err
		}
		diags, err = lint.RunArch(opts)
	} else {
		if opts.Analyzers, err = lint.ByName(*analyzers); err != nil {
			return err
		}
		diags, err = lint.Run(opts)
	}
	if err != nil {
		return err
	}
	if *factsStats {
		fmt.Fprintln(os.Stderr, stats)
	}
	switch baseMode {
	case "write":
		if err := lint.WriteBaseline(basePath, diags); err != nil {
			return err
		}
		fmt.Fprintf(os.Stderr, "soleil: baseline %s accepted %d finding(s)\n", basePath, len(diags))
		return nil
	case "check":
		fresh, stale, err := lint.CheckBaseline(basePath, diags)
		if err != nil {
			return err
		}
		if stale > 0 {
			fmt.Fprintf(os.Stderr, "soleil: baseline %s has %d stale entr(ies) — rewrite it with -baseline write:%s\n",
				basePath, stale, basePath)
		}
		diags = fresh
	}
	for _, d := range diags {
		fmt.Fprintln(os.Stderr, d)
	}
	if *jsonOut {
		if err := validate.EncodeJSON(os.Stdout, diags); err != nil {
			return err
		}
	}
	if *sarifOut != "" {
		if err := writeSARIF(*sarifOut, diags, "soleil-vet", lint.RuleDocs()); err != nil {
			return err
		}
	}
	if n := validate.CountAtLeast(diags, threshold); n > 0 {
		return fmt.Errorf("soleil: %d finding(s) at or above severity %v", n, threshold)
	}
	return nil
}

// defaultFactsDir is where `soleil vet` keeps its summary cache when
// -facts is not given: the user cache directory, so repeated runs in
// one checkout warm each other up. Empty (cache disabled) when no
// cache directory exists.
func defaultFactsDir() string {
	dir, err := os.UserCacheDir()
	if err != nil {
		return ""
	}
	return filepath.Join(dir, "soleil-lint-facts")
}

// writeSARIF renders diagnostics as a SARIF 2.1.0 log, relativizing
// positions against the working directory so code-scanning uploads
// resolve paths inside the repository checkout.
func writeSARIF(path string, diags []validate.Diagnostic, tool string, ruleDocs map[string]string) error {
	base, _ := os.Getwd()
	opts := validate.SARIFOptions{Tool: tool, Base: base, RuleDocs: ruleDocs}
	if path == "-" {
		return validate.EncodeSARIF(os.Stdout, diags, opts)
	}
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := validate.EncodeSARIF(f, diags, opts); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

func cmdAnalyze(args []string) error {
	arch, err := loadArch(args)
	if err != nil {
		return err
	}
	var tasks []analysis.Task
	for _, c := range arch.ComponentsOfKind(model.Active) {
		act := c.Activation()
		if act.Kind != model.PeriodicActivation || act.Cost <= 0 {
			continue
		}
		td, err := arch.EffectiveThreadDomain(c)
		if err != nil {
			return err
		}
		tasks = append(tasks, analysis.Task{
			Name: c.Name(), Period: act.Period, Cost: act.Cost,
			Deadline: act.Deadline, Priority: td.Domain().Priority,
		})
	}
	if len(tasks) == 0 {
		fmt.Println("no periodic components with cost budgets; nothing to analyze")
		return nil
	}
	u := analysis.Utilization(tasks)
	ok, _, bound := analysis.RMUtilizationTest(tasks)
	fmt.Printf("utilization %.3f (Liu-Layland bound for n=%d: %.3f, sufficient test: %v)\n",
		u, len(tasks), bound, ok)
	rs, err := analysis.ResponseTimeAnalysis(tasks)
	if err != nil {
		return err
	}
	schedulable := true
	for _, r := range rs {
		status := "OK"
		if !r.Schedulable {
			status = "MISS"
			schedulable = false
		}
		fmt.Printf("  %-20s worst-case response %10v  deadline %10v  [%s]\n",
			r.Task, r.WorstCase, r.Deadline, status)
	}
	if !schedulable {
		return fmt.Errorf("soleil: task set is not schedulable")
	}
	return nil
}

func cmdGenerate(args []string) error {
	fs := flag.NewFlagSet("generate", flag.ContinueOnError)
	modeName := fs.String("mode", "SOLEIL", "generation mode: SOLEIL, MERGE-ALL or ULTRA-MERGE")
	out := fs.String("out", "gen", "output directory")
	withMain := fs.Bool("main", true, "emit a runnable main")
	if err := fs.Parse(args); err != nil {
		return err
	}
	mode, err := assembly.ParseMode(*modeName)
	if err != nil {
		return err
	}
	arch, err := loadArch(fs.Args())
	if err != nil {
		return err
	}
	files, err := generate.Generate(arch, generate.Options{Mode: mode, Main: *withMain})
	if err != nil {
		return err
	}
	if err := generate.WriteFiles(*out, files); err != nil {
		return err
	}
	for _, f := range files {
		fmt.Printf("wrote %s/%s\n", *out, f.Name)
	}
	report := generate.CheckRequirements(files, mode)
	return report.Render(os.Stdout)
}

func cmdGenReport(args []string) error {
	arch, err := loadArch(args)
	if err != nil {
		return err
	}
	for _, mode := range []assembly.Mode{assembly.Soleil, assembly.MergeAll, assembly.UltraMerge} {
		files, err := generate.Generate(arch, generate.Options{Mode: mode, Main: true})
		if err != nil {
			return err
		}
		report := generate.CheckRequirements(files, mode)
		if err := report.Render(os.Stdout); err != nil {
			return err
		}
		if !report.OK() {
			return fmt.Errorf("soleil: mode %v fails the code-generation requirements", mode)
		}
	}
	return nil
}

func cmdRun(args []string) error {
	fs := flag.NewFlagSet("run", flag.ContinueOnError)
	modeName := fs.String("mode", "SOLEIL", "infrastructure mode")
	duration := fs.Duration("duration", 100*time.Millisecond, "virtual-time horizon")
	traceN := fs.Int("trace", 0, "print the first N scheduling events (0 = off)")
	faults := fs.String("faults", "",
		"run under injected faults, e.g. \"panic=0.05,seed=42\"; deploys panic guards, resilient threads and a restarting supervisor (SOLEIL mode)")
	metricsAddr := fs.String("metrics", "",
		"serve live observability endpoints (/metrics, /healthz, /arch, /top, /trace) on HOST:PORT (\":0\" picks a free port)")
	traceJSON := fs.String("trace-json", "",
		"write a Chrome trace_event JSON file of the run (open in Perfetto or chrome://tracing)")
	frJSON := fs.String("flightrecorder-json", "",
		"write the flight-recorder event timeline (deadline misses, over-budget dispatches, lifecycle and SLO transitions) to this JSON file")
	hold := fs.Duration("hold", 0,
		"keep the observability endpoints up this long after the run (needs -metrics)")
	if err := fs.Parse(args); err != nil {
		return err
	}
	mode, err := assembly.ParseMode(*modeName)
	if err != nil {
		return err
	}
	arch, err := loadArch(fs.Args())
	if err != nil {
		return err
	}
	cfg := assembly.Config{Mode: mode, AllowStubs: true}
	observing := *metricsAddr != "" || *traceJSON != "" || *frJSON != ""
	var reg *obs.Registry
	var tracer *obs.Tracer
	var rec *obs.Recorder
	if observing {
		reg = obs.NewRegistry()
		tracer = obs.NewTracer(0)
		rec = obs.NewRecorder(arch.Name(), 0)
		reg.SetRecorder(rec)
		defer rec.Close()
		cfg.Metrics = reg
		cfg.Tracer = tracer
	}
	var spec fault.Spec
	var flog *fault.Log
	if *faults != "" {
		if spec, err = fault.ParseSpec(*faults); err != nil {
			return err
		}
		if mode != assembly.Soleil {
			return fmt.Errorf("soleil: -faults needs the SOLEIL mode (membranes carry the panic guards)")
		}
		flog = fault.NewLog(0)
		cfg.Resilient = true
		cfg.Interceptors = func(component string) []membrane.Interceptor {
			ints := []membrane.Interceptor{fault.NewPanicInterceptor(component, flog, nil)}
			if spec.Panic > 0 {
				ints = append(ints, fault.NewChaosInterceptor(spec.Panic, spec.Seed))
			}
			return ints
		}
	}
	sys, err := assembly.Deploy(arch, cfg)
	if err != nil {
		return err
	}
	if *traceN > 0 {
		sys.Scheduler().EnableTrace(*traceN)
	} else if *traceJSON != "" {
		sys.Scheduler().EnableTrace(0) // unbounded: the whole schedule joins the exported trace
	}
	mgr, err := reconfig.NewManager(sys)
	if err != nil {
		return err
	}
	var sup *fault.Supervisor
	if *faults != "" {
		supOpts := []fault.SupervisorOption{fault.WithLog(flog)}
		if reg != nil {
			supOpts = append(supOpts, fault.WithRegistry(reg))
		}
		if sup, err = fault.NewSupervisor(mgr, supOpts...); err != nil {
			return err
		}
		for _, c := range arch.Components() {
			if c.Kind() != model.Active && c.Kind() != model.Passive {
				continue
			}
			name := c.Name()
			probes := []fault.Probe{
				fault.FailureProbe(func() (bool, error) { return sys.ComponentFailed(name) }),
			}
			if reg != nil {
				// The shared registry doubles as the supervisor's
				// health source: deadline-miss bursts trip a restart.
				probes = append(probes, fault.MetricsMissProbe(reg.Component(name), 3))
			}
			sup.Watch(name, fault.Policy{Directive: fault.RestartOneForOne, MaxRestarts: 10, Window: time.Second},
				probes...)
		}
		sup.Start(time.Millisecond)
		defer sup.Close()
	}
	if *metricsAddr != "" {
		bound, shutdown, err := obs.Serve(*metricsAddr, obs.HandlerOptions{
			Registry: reg,
			Tracer:   tracer,
			Recorder: rec,
			Arch:     archView(mgr),
		})
		if err != nil {
			return err
		}
		defer shutdown()
		fmt.Printf("observability: http://%s/{metrics,healthz,arch,top,trace}\n", bound)
	}
	epoch := time.Now()
	if err := sys.RunFor(*duration); err != nil {
		return err
	}
	if observing {
		sys.FlushSchedTrace(epoch)
	}
	if *traceJSON != "" {
		f, err := os.Create(*traceJSON)
		if err != nil {
			return err
		}
		if err := tracer.WriteChromeTrace(f); err != nil {
			f.Close()
			return err
		}
		if err := f.Close(); err != nil {
			return err
		}
		fmt.Printf("wrote %d trace spans to %s\n", tracer.Total(), *traceJSON)
	}
	if *frJSON != "" {
		f, err := os.Create(*frJSON)
		if err != nil {
			return err
		}
		evs := rec.Events()
		if err := obs.WriteEventsJSON(f, evs); err != nil {
			f.Close()
			return err
		}
		if err := f.Close(); err != nil {
			return err
		}
		fmt.Printf("wrote %d flight-recorder events to %s (%d recorded)\n", len(evs), *frJSON, rec.Total())
	}
	if sup != nil {
		sup.Close()
		sup.Poll() // one final pass over anything recorded late
	}
	if *traceN > 0 {
		fmt.Println("schedule trace:")
		if err := sys.Scheduler().WriteTrace(os.Stdout); err != nil {
			return err
		}
	}
	fmt.Printf("simulated %v of %q in mode %v\n", *duration, arch.Name(), mode)
	for _, c := range arch.ComponentsOfKind(model.Active) {
		th, ok := sys.Thread(c.Name())
		if !ok {
			continue
		}
		st := th.Task().Stats()
		fmt.Printf("  %-20s releases=%-5d completions=%-5d misses=%-3d maxResponse=%v\n",
			c.Name(), st.Releases, st.Completions, st.Misses, st.MaxResponse)
	}
	f := sys.MemoryRuntime().Footprint()
	fmt.Printf("  memory: immortal=%dB heap=%dB scoped-budget=%dB allocations=%d\n",
		f.ImmortalBytes, f.HeapBytes, f.ScopedBudget, f.Allocations)
	for _, b := range sys.Buffers() {
		st := b.Stats()
		fmt.Printf("  buffer %-40s enq=%-5d deq=%-5d dropped=%-3d maxDepth=%d overflow=%.1f%%\n",
			b.Name(), st.Enqueued, st.Dequeued, st.Dropped, st.MaxDepth, st.OverflowRate()*100)
	}
	if sup != nil {
		fmt.Printf("  faults: %d recorded (%d panics); system errors absorbed: %d\n",
			flog.Total(), flog.CountByKind(fault.Panic), len(sys.Errors()))
		actions := sup.Actions()
		fmt.Printf("  supervisor: %d action(s)\n", len(actions))
		for i, a := range actions {
			if i >= 10 {
				fmt.Printf("    ... %d more\n", len(actions)-10)
				break
			}
			fmt.Printf("    %s\n", a)
		}
	}
	if reg != nil {
		fmt.Println()
		if err := reg.WriteTop(os.Stdout); err != nil {
			return err
		}
	}
	if *metricsAddr != "" && *hold > 0 {
		fmt.Printf("holding observability endpoints for %v (try: soleil top HOST:PORT)\n", *hold)
		time.Sleep(*hold)
	}
	return nil
}

// cmdServe runs one node of a cluster deployment: the architecture is
// partitioned by the deployment descriptor and this process brings up
// the named node's slice — components, export/import links, fault
// supervisor, pacer and observability endpoint — with no hand-written
// transport wiring.
func cmdServe(args []string) error {
	fs := flag.NewFlagSet("serve", flag.ContinueOnError)
	node := fs.String("node", "", "node name from the deployment descriptor (required)")
	adlPath := fs.String("adl", "", "architecture file (required)")
	deployPath := fs.String("deploy", "", "deployment descriptor file (required)")
	listen := fs.String("listen", "", "override the node's link address (\":0\" picks a free port)")
	metricsAddr := fs.String("metrics", "", "override the node's observability address")
	beat := fs.Duration("beat", 0, "link heartbeat interval (default 250ms)")
	allowStubs := fs.Bool("allow-stubs", true, "deploy stub content for unregistered classes")
	forDur := fs.Duration("for", 0, "serve this long then exit (0 = until SIGINT/SIGTERM)")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *node == "" || *adlPath == "" || *deployPath == "" {
		return fmt.Errorf("usage: soleil serve -node N -adl arch.xml -deploy deploy.xml")
	}
	arch, err := adl.DecodeFile(*adlPath)
	if err != nil {
		return err
	}
	dep, err := adl.DecodeDeploymentFile(*deployPath)
	if err != nil {
		return err
	}
	plan, err := cluster.Compute(arch, dep)
	if err != nil {
		return err
	}
	ag, err := cluster.Start(cluster.AgentConfig{
		Node:        *node,
		Plan:        plan,
		ListenAddr:  *listen,
		MetricsAddr: *metricsAddr,
		Beat:        *beat,
		AllowStubs:  *allowStubs,
		Logf: func(format string, a ...any) {
			fmt.Fprintf(os.Stderr, "serve: "+format+"\n", a...)
		},
	})
	if err != nil {
		return err
	}
	defer ag.Close()
	np, _ := plan.Node(*node)
	fmt.Printf("node %s up: links on %s", *node, ag.Addr())
	if ag.MetricsAddr() != "" {
		fmt.Printf(", observability on http://%s/{metrics,healthz,arch,top,debug/flightrecorder}", ag.MetricsAddr())
	}
	fmt.Printf(" (%d components, %d exports, %d imports)\n",
		len(np.Primitives), len(np.Exports), len(np.Imports))

	// SIGQUIT dumps the flight recorder without stopping the node —
	// the embedded-systems equivalent of pulling the black box.
	quit := make(chan os.Signal, 1)
	signal.Notify(quit, syscall.SIGQUIT)
	defer signal.Stop(quit)
	go func() {
		for range quit {
			rec := ag.FlightRecorder()
			rec.Trigger("sigquit")
			fmt.Fprintf(os.Stderr, "serve: flight recorder (%d events recorded):\n", rec.Total())
			_ = obs.WriteEventsText(os.Stderr, rec.Events())
		}
	}()

	if *forDur > 0 {
		time.Sleep(*forDur)
		return nil
	}
	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
	<-sig
	fmt.Fprintln(os.Stderr, "serve: shutting down")
	return nil
}

// cmdCluster is the coordinator face: one-shot aggregated health for
// scripts, or -serve to keep federated /status and /metrics endpoints
// up for scrapers.
func cmdCluster(args []string) error {
	fs := flag.NewFlagSet("cluster", flag.ContinueOnError)
	adlPath := fs.String("adl", "", "architecture file (required)")
	deployPath := fs.String("deploy", "", "deployment descriptor file (required)")
	serveAddr := fs.String("serve", "",
		"serve the aggregated /status, /metrics, /top and /flightrecorder on HOST:PORT instead of printing once")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *adlPath == "" || *deployPath == "" {
		return fmt.Errorf("usage: soleil cluster -adl arch.xml -deploy deploy.xml [-serve ADDR]")
	}
	arch, err := adl.DecodeFile(*adlPath)
	if err != nil {
		return err
	}
	dep, err := adl.DecodeDeploymentFile(*deployPath)
	if err != nil {
		return err
	}
	plan, err := cluster.Compute(arch, dep)
	if err != nil {
		return err
	}
	coord := cluster.NewCoordinator(plan, nil)
	if *serveAddr != "" {
		bound, shutdown, err := coord.Serve(*serveAddr)
		if err != nil {
			return err
		}
		defer shutdown()
		fmt.Printf("coordinator: http://%s/{status,metrics,top,flightrecorder}\n", bound)
		sig := make(chan os.Signal, 1)
		signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
		<-sig
		return nil
	}
	st := coord.Status()
	enc := json.NewEncoder(os.Stdout)
	enc.SetIndent("", "  ")
	if err := enc.Encode(st); err != nil {
		return err
	}
	if !st.Healthy {
		return fmt.Errorf("soleil: cluster %q is unhealthy", st.Architecture)
	}
	return nil
}

// archView adapts the reconfiguration manager's introspection
// snapshot into the JSON the /arch endpoint serves.
func archView(mgr *reconfig.Manager) func() any {
	type component struct {
		Name         string   `json:"name"`
		Kind         string   `json:"kind"`
		Started      bool     `json:"started"`
		Failed       bool     `json:"failed,omitempty"`
		FailureCause string   `json:"failureCause,omitempty"`
		Membrane     bool     `json:"membrane"`
		Controllers  []string `json:"controllers,omitempty"`
	}
	type view struct {
		Mode       string      `json:"mode"`
		Components []component `json:"components"`
		Domains    []string    `json:"threadDomains,omitempty"`
		Areas      []string    `json:"memoryAreas,omitempty"`
		Composites []string    `json:"composites,omitempty"`
	}
	return func() any {
		snap := mgr.Introspect()
		v := view{
			Mode:       snap.Mode.String(),
			Domains:    snap.Domains,
			Areas:      snap.Areas,
			Composites: snap.Composites,
		}
		for _, c := range snap.Components {
			cc := component{
				Name: c.Name, Kind: c.Kind.String(), Started: c.Started,
				Failed: c.Failed, Membrane: c.HasMembrane, Controllers: c.Controllers,
			}
			if c.FailureCause != nil {
				cc.FailureCause = c.FailureCause.Error()
			}
			v.Components = append(v.Components, cc)
		}
		return v
	}
}
