package main_test

import (
	"bytes"
	"encoding/json"
	"os/exec"
	"path/filepath"
	"testing"

	"soleil/internal/validate"
)

// TestMaxSeverityParity builds both CLIs and pins the -max-severity
// exit gating: for the same target and threshold, `soleil-vet` and
// `soleil vet` must agree on whether to fail, with and without -arch,
// and the decision must match what validate.CountAtLeast predicts
// from the emitted JSON. This is the regression net around the shared
// gating predicate — a CLI growing its own severity filter shows up
// here as a split verdict.
func TestMaxSeverityParity(t *testing.T) {
	if testing.Short() {
		t.Skip("builds binaries; skipped in -short")
	}
	root, err := filepath.Abs(filepath.Join("..", ".."))
	if err != nil {
		t.Fatal(err)
	}
	bin := t.TempDir()
	vetBin := filepath.Join(bin, "soleil-vet")
	soleilBin := filepath.Join(bin, "soleil")
	for path, pkg := range map[string]string{
		vetBin:    "./cmd/soleil-vet",
		soleilBin: "./cmd/soleil",
	} {
		cmd := exec.Command("go", "build", "-o", path, pkg)
		cmd.Dir = root
		if out, err := cmd.CombinedOutput(); err != nil {
			t.Fatalf("go build %s: %v\n%s", pkg, err, out)
		}
	}
	facts := t.TempDir()

	cases := []struct {
		name    string
		arch    bool
		target  string
		wantAny bool // does the target have findings at all?
	}{
		{"lintbad", false, "./examples/lintbad", true},
		{"lintbad-arch", true, "./examples/lintbad", true},
		{"clean", false, "./internal/rtsj/...", false},
	}
	for _, tc := range cases {
		for _, sev := range []string{"info", "warning", "error"} {
			t.Run(tc.name+"/"+sev, func(t *testing.T) {
				common := []string{"-json", "-max-severity", sev, "-facts", facts}
				if tc.arch {
					common = append(common, "-arch", "-adl", "examples/lintbad/lintbad.xml")
				}
				vetArgs := append(append([]string{}, common...), tc.target)
				soleilArgs := append([]string{"vet"}, vetArgs...)

				vetOut, vetCode := run(t, root, vetBin, vetArgs...)
				soleilOut, soleilCode := run(t, root, soleilBin, soleilArgs...)

				if (vetCode != 0) != (soleilCode != 0) {
					t.Fatalf("gating disagrees: soleil-vet exit %d, soleil vet exit %d", vetCode, soleilCode)
				}
				var diags []validate.Diagnostic
				if err := json.Unmarshal(vetOut, &diags); err != nil {
					t.Fatalf("soleil-vet -json output: %v\n%s", err, vetOut)
				}
				var other []validate.Diagnostic
				if err := json.Unmarshal(soleilOut, &other); err != nil {
					t.Fatalf("soleil vet -json output: %v\n%s", err, soleilOut)
				}
				if len(diags) != len(other) {
					t.Errorf("finding counts diverge: soleil-vet %d, soleil vet %d", len(diags), len(other))
				}
				threshold, err := validate.ParseSeverity(sev)
				if err != nil {
					t.Fatal(err)
				}
				wantGate := validate.CountAtLeast(diags, threshold) > 0
				if gotGate := vetCode != 0; gotGate != wantGate {
					t.Errorf("exit %d but CountAtLeast predicts gate=%v over %d finding(s)",
						vetCode, wantGate, len(diags))
				}
				if tc.wantAny && len(diags) == 0 {
					t.Error("expected findings on the corpus, got none")
				}
				if !tc.wantAny && len(diags) != 0 {
					t.Errorf("expected a clean target, got %v", diags)
				}
			})
		}
	}
}

// run executes a built CLI from dir and returns its stdout and exit
// code; any exit status is fine (gating is the thing under test), but
// a start failure is fatal.
func run(t *testing.T, dir, bin string, args ...string) ([]byte, int) {
	t.Helper()
	cmd := exec.Command(bin, args...)
	cmd.Dir = dir
	var stdout, stderr bytes.Buffer
	cmd.Stdout = &stdout
	cmd.Stderr = &stderr
	err := cmd.Run()
	code := 0
	if err != nil {
		exit, ok := err.(*exec.ExitError)
		if !ok {
			t.Fatalf("%s %v: %v", bin, args, err)
		}
		code = exit.ExitCode()
	}
	if code > 1 {
		t.Fatalf("%s %v: internal error (exit %d)\n%s", bin, args, code, stderr.String())
	}
	return stdout.Bytes(), code
}
