// Command soleil-vet runs the source-level RTSJ conformance suite
// (internal/lint: SA01 noheapalloc, SA02 scoperef, SA03 rtblock, SA04
// archconform) over Go packages. It works in two modes:
//
// Standalone, on `go list` package patterns:
//
//	soleil-vet [-json] [-sarif FILE] [-adl arch.xml] [-analyzers a,b] [-max-severity sev] ./...
//
// or, with -arch, the whole-architecture suite (SA05 bindingcycle,
// SA06 lockorder, SA07 membranebypass, SA08 costbound, SA09
// flowlatency, SA10 queuesizing, SA11 spawnleak) over every loaded
// package at once:
//
//	soleil-vet -arch -adl arch.xml [-deploy deploy.xml] ./...
//
// -facts DIR enables the on-disk summary cache (warm runs skip
// summary recomputation; -facts-stats prints the counters), and
// -baseline write:FILE / check:FILE gates the exit code on findings
// not present in an accepted-debt snapshot.
//
// As a vet tool, speaking the cmd/go vet-tool protocol (-V=full and
// -flags handshakes, then one <unit>.cfg per package):
//
//	go vet -vettool=$(which soleil-vet) ./...
//
// In vet-tool mode the architecture for archconform comes from the
// SOLEIL_VET_ADL environment variable, since go vet does not forward
// arbitrary file arguments.
//
// Exit status: 0 when clean, 1 on findings at or above -max-severity
// (standalone) , 2 on findings (vet-tool mode, the exit code cmd/go
// expects) or an internal error.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"strings"

	"soleil/internal/lint"
	"soleil/internal/validate"
)

func main() {
	fs := flag.NewFlagSet("soleil-vet", flag.ExitOnError)
	version := fs.String("V", "", "print version and exit (vet-tool handshake)")
	printFlags := fs.Bool("flags", false, "print flag descriptors as JSON and exit (vet-tool handshake)")
	jsonOut := fs.Bool("json", false, "emit findings as JSON on stdout (the soleil validate -json schema)")
	adlPath := fs.String("adl", os.Getenv("SOLEIL_VET_ADL"),
		"architecture file for the archconform pass (default $SOLEIL_VET_ADL)")
	analyzers := fs.String("analyzers", "", "comma-separated analyzer selection (default: all)")
	archMode := fs.Bool("arch", false,
		"run the whole-architecture suite (SA05–SA11) instead of the per-function passes; requires -adl (standalone mode only)")
	deployPath := fs.String("deploy", "",
		"deployment descriptor for -arch (escalates wait cycles that span nodes)")
	maxSev := fs.String("max-severity", "warning",
		"lowest severity that makes the exit status non-zero (info, warning, error)")
	sarifOut := fs.String("sarif", "",
		"write findings as a SARIF 2.1.0 log to FILE (\"-\" for stdout; standalone mode only)")
	factsDir := fs.String("facts", "",
		"directory for the interprocedural summary cache (empty: no cache)")
	factsStats := fs.Bool("facts-stats", false,
		"print the summary-cache hit/miss counters on stderr")
	baseline := fs.String("baseline", "",
		"baseline gating: write:FILE snapshots findings as accepted debt, check:FILE (or FILE) gates only new ones")
	fs.Parse(os.Args[1:])

	switch {
	case *version != "":
		// cmd/go derives a tool id from this line; the shape must be
		// "<name> version <version>".
		fmt.Printf("soleil-vet version v1.0.0\n")
		return
	case *printFlags:
		// cmd/go asks which analyzer flags the tool supports so it can
		// forward the ones the user passed to `go vet`.
		type flagDesc struct {
			Name  string `json:"Name"`
			Bool  bool   `json:"Bool"`
			Usage string `json:"Usage"`
		}
		descs := []flagDesc{}
		fs.VisitAll(func(f *flag.Flag) {
			if f.Name == "V" || f.Name == "flags" {
				return
			}
			isBool := false
			if b, ok := f.Value.(interface{ IsBoolFlag() bool }); ok {
				isBool = b.IsBoolFlag()
			}
			descs = append(descs, flagDesc{Name: f.Name, Bool: isBool, Usage: f.Usage})
		})
		json.NewEncoder(os.Stdout).Encode(descs)
		return
	}

	threshold, err := validate.ParseSeverity(*maxSev)
	if err != nil {
		fatal(err)
	}

	args := fs.Args()
	if len(args) == 1 && strings.HasSuffix(args[0], ".cfg") {
		selected, err := lint.ByName(*analyzers)
		if err != nil {
			fatal(err)
		}
		runUnit(args[0], *adlPath, selected, *jsonOut)
		return
	}

	baseMode, basePath, err := lint.ParseBaselineFlag(*baseline)
	if err != nil {
		fatal(err)
	}
	var stats lint.CacheStats
	opts := lint.Options{Patterns: args, ADL: *adlPath, Deploy: *deployPath,
		FactsDir: *factsDir, Stats: &stats}
	var diags []validate.Diagnostic
	if *archMode {
		if *adlPath == "" {
			fatal(fmt.Errorf("-arch needs -adl (the wait graph comes from the bindings)"))
		}
		if opts.ArchAnalyzers, err = lint.ArchByName(*analyzers); err != nil {
			fatal(err)
		}
		diags, err = lint.RunArch(opts)
	} else {
		if opts.Analyzers, err = lint.ByName(*analyzers); err != nil {
			fatal(err)
		}
		diags, err = lint.Run(opts)
	}
	if err != nil {
		fatal(err)
	}
	if *factsStats {
		fmt.Fprintln(os.Stderr, stats)
	}
	switch baseMode {
	case "write":
		if err := lint.WriteBaseline(basePath, diags); err != nil {
			fatal(err)
		}
		fmt.Fprintf(os.Stderr, "soleil-vet: baseline %s accepted %d finding(s)\n", basePath, len(diags))
		return
	case "check":
		fresh, stale, err := lint.CheckBaseline(basePath, diags)
		if err != nil {
			fatal(err)
		}
		if stale > 0 {
			fmt.Fprintf(os.Stderr, "soleil-vet: baseline %s has %d stale entr(ies) — rewrite it with -baseline write:%s\n",
				basePath, stale, basePath)
		}
		diags = fresh
	}
	for _, d := range diags {
		fmt.Fprintln(os.Stderr, d)
	}
	if *jsonOut {
		if err := validate.EncodeJSON(os.Stdout, diags); err != nil {
			fatal(err)
		}
	}
	if *sarifOut != "" {
		if err := writeSARIF(*sarifOut, diags); err != nil {
			fatal(err)
		}
	}
	if n := validate.CountAtLeast(diags, threshold); n > 0 {
		fmt.Fprintf(os.Stderr, "soleil-vet: %d finding(s) at or above severity %v\n", n, threshold)
		os.Exit(1)
	}
}

// writeSARIF renders the findings as a SARIF 2.1.0 log with positions
// relativized against the working directory, so CI code-scanning
// uploads resolve the paths inside the checkout.
func writeSARIF(path string, diags []validate.Diagnostic) error {
	base, _ := os.Getwd()
	opts := validate.SARIFOptions{Tool: "soleil-vet", Base: base, RuleDocs: lint.RuleDocs()}
	if path == "-" {
		return validate.EncodeSARIF(os.Stdout, diags, opts)
	}
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := validate.EncodeSARIF(f, diags, opts); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "soleil-vet:", err)
	os.Exit(2)
}
