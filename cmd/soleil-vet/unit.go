package main

import (
	"encoding/json"
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"io"
	"os"
	"path/filepath"

	"soleil/internal/adl"
	"soleil/internal/lint"
	"soleil/internal/model"
)

// unitConfig is the JSON configuration cmd/go hands a vet tool for
// each compilation unit (the `vetConfig` struct in
// cmd/go/internal/work). Only the fields this tool consumes are
// declared; unknown fields are ignored by encoding/json.
type unitConfig struct {
	ID                        string
	Compiler                  string
	Dir                       string
	ImportPath                string
	GoFiles                   []string
	ImportMap                 map[string]string
	PackageFile               map[string]string
	VetxOnly                  bool
	VetxOutput                string
	SucceedOnTypecheckFailure bool
}

// runUnit analyzes one compilation unit described by a .cfg file, per
// the cmd/go vet-tool protocol: type-check the unit against the
// export data cmd/go already built, run the analyzers, print findings
// to stderr (or JSON to stdout) and exit 2 when there are findings.
func runUnit(cfgPath, adlPath string, analyzers []*lint.Analyzer, jsonOut bool) {
	data, err := os.ReadFile(cfgPath)
	if err != nil {
		fatal(err)
	}
	var cfg unitConfig
	if err := json.Unmarshal(data, &cfg); err != nil {
		fatal(fmt.Errorf("parsing %s: %v", cfgPath, err))
	}
	// The tool owns the facts file; this suite keeps no cross-package
	// facts, but cmd/go still expects the file to exist.
	if cfg.VetxOutput != "" {
		if err := os.WriteFile(cfg.VetxOutput, []byte{}, 0o666); err != nil {
			fatal(err)
		}
	}
	if cfg.VetxOnly {
		return // dependency pass: facts only, no diagnostics wanted
	}

	fset := token.NewFileSet()
	var files []*ast.File
	for _, g := range cfg.GoFiles {
		if !filepath.IsAbs(g) {
			g = filepath.Join(cfg.Dir, g)
		}
		f, err := parser.ParseFile(fset, g, nil, parser.ParseComments)
		if err != nil {
			typecheckFailed(cfg, err)
			return
		}
		files = append(files, f)
	}
	lookup := func(path string) (io.ReadCloser, error) {
		if mapped, ok := cfg.ImportMap[path]; ok {
			path = mapped
		}
		file, ok := cfg.PackageFile[path]
		if !ok {
			return nil, fmt.Errorf("no export data for %q", path)
		}
		return os.Open(file)
	}
	info := &types.Info{
		Types:      map[ast.Expr]types.TypeAndValue{},
		Defs:       map[*ast.Ident]types.Object{},
		Uses:       map[*ast.Ident]types.Object{},
		Selections: map[*ast.SelectorExpr]*types.Selection{},
		Implicits:  map[ast.Node]types.Object{},
		Scopes:     map[ast.Node]*types.Scope{},
	}
	conf := types.Config{Importer: importer.ForCompiler(fset, cfg.Compiler, lookup)}
	tpkg, err := conf.Check(cfg.ImportPath, fset, files, info)
	if err != nil {
		typecheckFailed(cfg, err)
		return
	}

	var arch *model.Architecture
	if adlPath != "" {
		if arch, err = adl.DecodeFile(adlPath); err != nil {
			fatal(err)
		}
	}
	pkg := &lint.Package{
		ImportPath: cfg.ImportPath, Fset: fset, Files: files, Pkg: tpkg, Info: info,
	}
	diags, err := lint.RunPackage(pkg, arch, analyzers)
	if err != nil {
		fatal(err)
	}
	if len(diags) == 0 {
		return
	}
	if jsonOut {
		// The cmd/go JSON convention: {"pkg": {"analyzer": [diag...]}}.
		// The diag objects themselves use the shared soleil schema.
		out := map[string]map[string]any{cfg.ImportPath: {"soleil": diags}}
		json.NewEncoder(os.Stdout).Encode(out)
		return
	}
	for _, d := range diags {
		fmt.Fprintln(os.Stderr, d)
	}
	os.Exit(2)
}

func typecheckFailed(cfg unitConfig, err error) {
	if cfg.SucceedOnTypecheckFailure {
		return
	}
	fatal(fmt.Errorf("type-checking %s: %v", cfg.ImportPath, err))
}
